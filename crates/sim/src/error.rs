//! Error type of the experiment harness.

use fmore_auction::AuctionError;
use fmore_fl::FlError;
use fmore_mec::MecError;
use std::fmt;

/// Error returned by the scenario engine and the experiment registry.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A federated-learning scenario failed.
    Fl(FlError),
    /// A cluster scenario failed.
    Mec(MecError),
    /// A stand-alone auction game failed.
    Auction(AuctionError),
    /// The registry was asked for an experiment it does not contain.
    UnknownExperiment(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Fl(e) => write!(f, "federated-learning scenario failed: {e}"),
            SimError::Mec(e) => write!(f, "cluster scenario failed: {e}"),
            SimError::Auction(e) => write!(f, "auction game failed: {e}"),
            SimError::UnknownExperiment(name) => write!(f, "unknown experiment '{name}'"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Fl(e) => Some(e),
            SimError::Mec(e) => Some(e),
            SimError::Auction(e) => Some(e),
            SimError::UnknownExperiment(_) => None,
        }
    }
}

impl From<FlError> for SimError {
    fn from(e: FlError) -> Self {
        SimError::Fl(e)
    }
}

impl From<MecError> for SimError {
    fn from(e: MecError) -> Self {
        SimError::Mec(e)
    }
}

impl From<AuctionError> for SimError {
    fn from(e: AuctionError) -> Self {
        SimError::Auction(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: SimError = FlError::InvalidConfig("bad".into()).into();
        assert!(e.to_string().contains("bad"));
        assert!(std::error::Error::source(&e).is_some());

        let e: SimError = MecError::InvalidConfig("nodes".into()).into();
        assert!(e.to_string().contains("nodes"));

        let e: SimError = AuctionError::NoBids.into();
        assert!(e.to_string().contains("no bids"));

        let e = SimError::UnknownExperiment("nope".into());
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
