//! Plain data series and tables used to emit experiment results.

/// One named (x, y) series — e.g. "FMore accuracy" over training rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name as it would appear in a figure legend.
    pub name: String,
    /// X coordinates (rounds, N, K, ψ, seconds, …).
    pub xs: Vec<f64>,
    /// Y values.
    pub ys: Vec<f64>,
}

impl Series {
    /// Creates a series, truncating to the shorter of the two vectors.
    pub fn new(name: impl Into<String>, xs: Vec<f64>, ys: Vec<f64>) -> Self {
        let n = xs.len().min(ys.len());
        Self {
            name: name.into(),
            xs: xs[..n].to_vec(),
            ys: ys[..n].to_vec(),
        }
    }

    /// Creates a series with implicit x = 1, 2, 3, … (training rounds).
    pub fn from_rounds(name: impl Into<String>, ys: Vec<f64>) -> Self {
        let xs = (1..=ys.len()).map(|i| i as f64).collect();
        Self {
            name: name.into(),
            xs,
            ys,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Final y value, or `None` if empty.
    pub fn last(&self) -> Option<f64> {
        self.ys.last().copied()
    }

    /// Renders the series as CSV lines `x,y`.
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\nx,y\n", self.name);
        for (x, y) in self.xs.iter().zip(&self.ys) {
            out.push_str(&format!("{x},{y}\n"));
        }
        out
    }
}

/// A small table rendered as Markdown (the "rows the paper reports").
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row values as strings (already formatted by the experiment).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn push_row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of mixed display values.
    pub fn push_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_construction_and_accessors() {
        let s = Series::new("acc", vec![1.0, 2.0, 3.0], vec![0.1, 0.2]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.last(), Some(0.2));
        assert_eq!(s.xs, vec![1.0, 2.0]);

        let r = Series::from_rounds("loss", vec![2.0, 1.5, 1.0]);
        assert_eq!(r.xs, vec![1.0, 2.0, 3.0]);
        assert_eq!(r.last(), Some(1.0));

        let empty = Series::new("none", vec![], vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.last(), None);
    }

    #[test]
    fn csv_contains_every_point() {
        let s = Series::from_rounds("acc", vec![0.5, 0.6]);
        let csv = s.to_csv();
        assert!(csv.contains("# acc"));
        assert!(csv.contains("1,0.5"));
        assert!(csv.contains("2,0.6"));
    }

    #[test]
    fn markdown_table_renders_headers_and_rows() {
        let mut t = Table::new("Fig. 9b", &["N", "payment", "score"]);
        t.push_row(&["50".to_string(), "4400".to_string(), "600".to_string()]);
        t.push_display_row(&[&100, &4100.5, &900]);
        let md = t.to_markdown();
        assert!(md.contains("### Fig. 9b"));
        assert!(md.contains("| N | payment | score |"));
        assert!(md.contains("| 50 | 4400 | 600 |"));
        assert!(md.contains("| 100 | 4100.5 | 900 |"));
        assert_eq!(md.matches("---|").count(), 3);
    }
}
