//! Experiment harness reproducing every figure of the FMore paper's evaluation (Section V).
//!
//! Each module in [`experiments`] corresponds to one figure (or pair of figures) of the
//! paper and produces plain data series that can be printed as Markdown tables or CSV:
//!
//! | Module | Paper figure | What it reports |
//! |---|---|---|
//! | [`experiments::accuracy`] | Figs. 4–7 | accuracy & loss per round for FMore / RandFL / FixFL on each task |
//! | [`experiments::scores`] | Fig. 8 | the distribution of winner scores per scheme |
//! | [`experiments::impact_n`] | Fig. 9 | rounds-to-accuracy and (payment, score) as `N` varies |
//! | [`experiments::impact_k`] | Fig. 10 | rounds-to-accuracy and (payment, score) as `K` varies |
//! | [`experiments::impact_psi`] | Fig. 11 | training speed and winner-rank spread as ψ varies |
//! | [`experiments::cluster`] | Figs. 12–13 | accuracy and cumulative time on the simulated 32-node cluster |
//! | [`experiments::headline`] | §I / §V text | the headline round-reduction and accuracy-improvement percentages |
//!
//! Every experiment has a `quick()` configuration (seconds, used by tests and CI) and a
//! `paper()` configuration (the full parameters of Section V). Results carry enough data for
//! EXPERIMENTS.md to record paper-vs-measured comparisons.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod series;

pub use series::{Series, Table};
