//! Experiment harness reproducing every figure of the FMore paper's evaluation (Section V),
//! built on a unified **scenario engine**.
//!
//! The crate has three layers:
//!
//! * [`scenario`] — the engine: a [`scenario::ScenarioSpec`] declaratively describes one
//!   training run (task, strategy, rounds, seed) and a [`scenario::ScenarioRunner`] executes
//!   specs on the shared worker pool of [`fmore_fl::engine`], with independent scenarios
//!   (sweep points, scheme comparisons) running in parallel;
//! * [`experiments`] — one thin presentation module per paper figure, each of which declares
//!   specs, hands them to the runner, and formats the returned histories;
//! * [`experiments::registry`] — the declarative catalogue of every experiment (the seven
//!   paper figures plus the dynamic-MEC robustness suite), so drivers iterate the registry
//!   instead of hard-coding module calls.
//!
//! | Module | Paper figure | What it reports |
//! |---|---|---|
//! | [`experiments::accuracy`] | Figs. 4–7 | accuracy & loss per round for FMore / RandFL / FixFL on each task |
//! | [`experiments::scores`] | Fig. 8 | the distribution of winner scores per scheme |
//! | [`experiments::impact_n`] | Fig. 9 | rounds-to-accuracy and (payment, score) as `N` varies |
//! | [`experiments::impact_k`] | Fig. 10 | rounds-to-accuracy and (payment, score) as `K` varies |
//! | [`experiments::impact_psi`] | Fig. 11 | training speed and winner-rank spread as ψ varies |
//! | [`experiments::cluster`] | Figs. 12–13 | accuracy and cumulative time on the simulated 32-node cluster |
//! | [`experiments::headline`] | §I / §V text | the headline round-reduction and accuracy-improvement percentages |
//! | [`experiments::dynamics`] | §I / §VI dynamics | churn robustness: dropout sweep, curves under churn, payment waste |
//! | [`experiments::scale`] | population scale | streamed top-K selection, peak bid memory, and dense-path parity as `N` sweeps toward 10⁶ |
//!
//! Every experiment has a `quick()` configuration (seconds, used by tests and CI) and a
//! `paper()` configuration (the full parameters of Section V). The stand-alone auction games
//! behind the Fig. 9b/10b/11b sweeps live in [`fmore_auction::game`]; no experiment module
//! constructs an auction or an equilibrium solver of its own.
//!
//! # Example
//!
//! ```
//! use fmore_sim::experiments::registry::{self, Fidelity};
//! use fmore_sim::scenario::ScenarioRunner;
//!
//! let runner = ScenarioRunner::new();
//! let report = registry::find("scores")?.run(&runner, Fidelity::Quick)?;
//! assert!(report.to_markdown().contains("FMore"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod experiments;
pub mod scenario;
pub mod series;

pub use error::SimError;
pub use scenario::{
    ClusterOutcome, ClusterScenarioSpec, ScenarioOutcome, ScenarioRunner, ScenarioSpec,
};
pub use series::{Series, Table};
