//! Mobile-edge-computing (MEC) cluster simulator.
//!
//! The paper's real-world evaluation (Section V-C, Figs. 12–13) runs FMore on a 32-machine
//! Linux cluster (one aggregator, 31 edge nodes; Intel i7 CPUs, 1 Gbps Ethernet) where each
//! node bids **three** resources — computing power (CPU cores), bandwidth, and data size —
//! under the additive scoring rule `S(q, p) = 0.4·q1 + 0.3·q2 + 0.3·q3 − p`. We do not have
//! that cluster, so this crate simulates it (see DESIGN.md, "Substitutions"):
//!
//! * [`node`] — edge nodes with dynamic per-round resource draws and a private cost θ,
//! * [`time_model`] — analytic computation- and communication-time models calibrated to the
//!   paper's hardware class, producing per-round wall-clock times,
//! * [`dynamics`] — the churn layer of a *dynamic* MEC environment (§I/§VI): seeded
//!   arrival/departure processes, mid-round dropouts, stragglers, resource jitter, and the
//!   server-deadline / re-auction semantics that make the static round loop churn-capable,
//! * [`cluster`] — the full deployment: a three-dimensional FMore auction (or RandFL) per
//!   round, delegation of the actual learning to [`fmore_fl::FederatedTrainer`], and
//!   accumulation of simulated training time (including deadline waits and re-auction waves
//!   when dynamics are enabled),
//! * [`ledger`] — per-node payment accounting over the run,
//! * [`population`] — lazily materialised node populations for million-bidder rounds:
//!   per-node attributes derived O(1) from `(seed, i)` streams, packed-bitmap membership
//!   churn over index sets, and on-demand materialisation of auction winners.
//!
//! # Example
//!
//! ```
//! use fmore_mec::cluster::{ClusterConfig, MecCluster, ClusterStrategy};
//!
//! let config = ClusterConfig::fast_test();
//! let mut cluster = MecCluster::new(config, ClusterStrategy::FMore, 7)?;
//! let history = cluster.run(2)?;
//! assert_eq!(history.rounds.len(), 2);
//! assert!(history.total_time_secs() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod dynamics;
pub mod error;
pub mod ledger;
pub mod node;
pub mod population;
pub mod time_model;

pub use cluster::{ClusterConfig, ClusterHistory, ClusterRound, ClusterStrategy, MecCluster};
pub use dynamics::{ChurnModel, ChurnState, DynamicsConfig, MembershipChange, ParticipantFate};
pub use error::MecError;
pub use ledger::PaymentLedger;
pub use node::{MecNode, ResourceProfile, ResourceRanges};
pub use population::{NodePopulation, PopulationChurn, PopulationSpec};
pub use time_model::TimeModel;
