//! Per-node payment accounting.

use fmore_auction::NodeId;
use std::collections::BTreeMap;

/// Tracks the payments promised to every node over a training run, and how often each node
/// won. Used by the cluster experiments to report total incentive spend and per-node income.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PaymentLedger {
    entries: BTreeMap<NodeId, (f64, usize)>,
}

impl PaymentLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` won a round and was promised `payment`.
    pub fn record(&mut self, node: NodeId, payment: f64) {
        let entry = self.entries.entry(node).or_insert((0.0, 0));
        entry.0 += payment;
        entry.1 += 1;
    }

    /// Records one round's winners in a single pass, reading `(node, payment)` pairs
    /// straight from the stored winner list — zero-payment entries (RandFL picks) are
    /// skipped, so callers no longer filter and re-collect ids per round.
    pub fn record_round<I: IntoIterator<Item = (NodeId, f64)>>(&mut self, winners: I) {
        for (node, payment) in winners {
            if payment > 0.0 {
                self.record(node, payment);
            }
        }
    }

    /// Total payment promised to `node` so far.
    pub fn total_for(&self, node: NodeId) -> f64 {
        self.entries.get(&node).map_or(0.0, |(p, _)| *p)
    }

    /// Number of rounds `node` has won so far.
    pub fn wins_for(&self, node: NodeId) -> usize {
        self.entries.get(&node).map_or(0, |(_, w)| *w)
    }

    /// Total payment promised to all nodes.
    pub fn total(&self) -> f64 {
        self.entries.values().map(|(p, _)| p).sum()
    }

    /// Number of distinct nodes that have won at least once.
    pub fn distinct_winners(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(node, total_payment, wins)` entries in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64, usize)> + '_ {
        self.entries.iter().map(|(&id, &(p, w))| (id, p, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_node() {
        let mut ledger = PaymentLedger::new();
        ledger.record(NodeId(1), 0.5);
        ledger.record(NodeId(1), 0.3);
        ledger.record(NodeId(2), 1.0);
        assert!((ledger.total_for(NodeId(1)) - 0.8).abs() < 1e-12);
        assert_eq!(ledger.wins_for(NodeId(1)), 2);
        assert!((ledger.total() - 1.8).abs() < 1e-12);
        assert_eq!(ledger.distinct_winners(), 2);
        assert_eq!(ledger.total_for(NodeId(9)), 0.0);
        assert_eq!(ledger.wins_for(NodeId(9)), 0);
    }

    #[test]
    fn iteration_is_ordered_by_node() {
        let mut ledger = PaymentLedger::new();
        ledger.record(NodeId(5), 1.0);
        ledger.record(NodeId(1), 2.0);
        let ids: Vec<u64> = ledger.iter().map(|(id, _, _)| id.0).collect();
        assert_eq!(ids, vec![1, 5]);
    }

    #[test]
    fn empty_ledger_defaults() {
        let ledger = PaymentLedger::default();
        assert_eq!(ledger.total(), 0.0);
        assert_eq!(ledger.distinct_winners(), 0);
    }

    #[test]
    fn record_round_skips_zero_payments() {
        let mut ledger = PaymentLedger::new();
        ledger.record_round([
            (NodeId(1), 0.5),
            (NodeId(2), 0.0), // RandFL pick: no payment, no ledger entry
            (NodeId(3), 0.25),
        ]);
        assert_eq!(ledger.distinct_winners(), 2);
        assert!((ledger.total() - 0.75).abs() < 1e-12);
        assert_eq!(ledger.wins_for(NodeId(2)), 0);
    }
}
