//! Error type for the MEC cluster simulator.

use std::fmt;

/// Error returned by the MEC cluster simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum MecError {
    /// Invalid cluster configuration.
    InvalidConfig(String),
    /// The embedded federated-learning trainer failed.
    Learning(fmore_fl::FlError),
    /// The per-round resource auction failed.
    Auction(fmore_auction::AuctionError),
}

impl fmt::Display for MecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MecError::InvalidConfig(msg) => write!(f, "invalid cluster config: {msg}"),
            MecError::Learning(e) => write!(f, "federated learning failure: {e}"),
            MecError::Auction(e) => write!(f, "auction failure: {e}"),
        }
    }
}

impl std::error::Error for MecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MecError::Learning(e) => Some(e),
            MecError::Auction(e) => Some(e),
            MecError::InvalidConfig(_) => None,
        }
    }
}

impl From<fmore_fl::FlError> for MecError {
    fn from(e: fmore_fl::FlError) -> Self {
        MecError::Learning(e)
    }
}

impl From<fmore_auction::AuctionError> for MecError {
    fn from(e: fmore_auction::AuctionError) -> Self {
        MecError::Auction(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = MecError::InvalidConfig("zero nodes".into());
        assert!(e.to_string().contains("zero nodes"));
        assert!(std::error::Error::source(&e).is_none());

        let e: MecError = fmore_fl::FlError::UnknownClient(3).into();
        assert!(e.to_string().contains("3"));
        assert!(std::error::Error::source(&e).is_some());

        let e: MecError = fmore_auction::AuctionError::NoBids.into();
        assert!(e.to_string().contains("no bids"));
    }
}
