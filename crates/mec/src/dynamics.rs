//! Churn and deadline dynamics of a real MEC deployment.
//!
//! The paper's whole pitch is incentivizing participation in a *dynamic* edge environment
//! (§I: nodes "may join or leave anytime"; §VI: the mechanism must stay lightweight and
//! robust under it), yet a static reproduction lets every selected winner finish every
//! round. This module supplies the missing dynamics as a seeded, fully deterministic layer:
//!
//! * [`ChurnModel`] — the per-round stochastic processes: node **departures** and
//!   **arrivals** (population churn between rounds), winner **dropouts** (a selected node
//!   vanishes mid-round; its update is lost and its payment forfeited), **stragglers** (a
//!   winner's round is slowed by a multiplicative factor), and **resource jitter** (the
//!   resources actually available during execution wander around what was declared at bid
//!   time).
//! * [`ChurnState`] — the mutable per-cluster state: which nodes are currently present plus
//!   the model's own RNG stream, kept separate from the auction/training RNGs so enabling
//!   churn never perturbs the static results.
//! * [`DynamicsConfig`] — churn plus the **server deadline** and the re-auction budget,
//!   attached to a `ClusterConfig` to turn the static round loop into a dynamic one.
//!
//! # Deadline and re-auction semantics
//!
//! A dynamic round is synchronous with a server deadline `T`: winners whose simulated
//! completion time (computation + communication, straggler slowdown and resource jitter
//! applied) exceeds `T` deliver too late to aggregate — the server honours their payment
//! (work was delivered, merely late) but the spend is **wasted**. Dropouts never deliver and
//! forfeit payment. Whenever the surviving winner set is under quota, the aggregator runs a
//! **re-auction wave** over the round's standing bid pool
//! ([`fmore_auction::Auction::reauction`]): the already-collected sealed bids compete again
//! under the same scoring rule, excluding every node already assigned. This mirrors the
//! paper's dynamic-environment discussion — recruitment must not restart the bid-ask phase,
//! and because the standing bids are equilibrium bids for this round's broadcast rule, the
//! refill is incentive-neutral. Each wave costs simulated time (its own deadline window when
//! anyone fails, otherwise the slowest on-time delivery), so churn degrades time-to-accuracy
//! exactly the way Figs. 12–13 would show on real hardware.
//!
//! All draws happen on the control thread in node/slot order, so a churn-enabled run is
//! bit-identical across worker-pool sizes and execution modes — the same guarantee the
//! static engine gives.

use crate::error::MecError;
use rand::rngs::StdRng;
use rand::Rng;

/// The per-round stochastic churn processes of a dynamic MEC deployment.
///
/// All probabilities are per round: departures/arrivals are drawn per node between rounds,
/// dropout/straggler fates per assigned winner within a round. The model is pure data —
/// state (presence, RNG) lives in [`ChurnState`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Probability that a present node leaves the cluster before the next bid collection.
    pub departure_prob: f64,
    /// Probability that an absent node rejoins before the next bid collection.
    pub arrival_prob: f64,
    /// Probability that an assigned winner vanishes mid-round (update lost, payment
    /// forfeited).
    pub dropout_prob: f64,
    /// Probability that an assigned winner is slowed this round.
    pub straggler_prob: f64,
    /// Multiplicative slowdown applied to a straggler's completion time (≥ 1).
    pub straggler_slowdown: f64,
    /// Half-width of the multiplicative jitter on executed resources: the compute and
    /// bandwidth actually available during the round are the declared values scaled by a
    /// factor drawn uniformly from `[1 − jitter, 1 + jitter]`.
    pub resource_jitter: f64,
    /// Floor on the present population: departures stop once only this many nodes remain,
    /// so the cluster can never churn itself empty.
    pub min_present: usize,
}

impl ChurnModel {
    /// The degenerate model: no churn at all. A dynamic round under this model behaves like
    /// the static loop (modulo the deadline gate).
    pub fn stable() -> Self {
        Self {
            departure_prob: 0.0,
            arrival_prob: 0.0,
            dropout_prob: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 1.0,
            resource_jitter: 0.0,
            min_present: 1,
        }
    }

    /// A moderate edge-environment default: occasional departures and dropouts, noticeable
    /// straggling, mild resource jitter.
    pub fn edge_default() -> Self {
        Self {
            departure_prob: 0.05,
            arrival_prob: 0.3,
            dropout_prob: 0.1,
            straggler_prob: 0.15,
            straggler_slowdown: 3.0,
            resource_jitter: 0.1,
            min_present: 2,
        }
    }

    /// Returns the model with the per-winner dropout probability replaced.
    pub fn with_dropout(mut self, p: f64) -> Self {
        self.dropout_prob = p;
        self
    }

    /// Returns the model with the per-winner straggler probability replaced.
    pub fn with_stragglers(mut self, p: f64, slowdown: f64) -> Self {
        self.straggler_prob = p;
        self.straggler_slowdown = slowdown;
        self
    }

    /// Returns the model with the departure/arrival processes replaced.
    pub fn with_membership(mut self, departure: f64, arrival: f64) -> Self {
        self.departure_prob = departure;
        self.arrival_prob = arrival;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), MecError> {
        let prob_ok = |p: f64| (0.0..=1.0).contains(&p);
        if !(prob_ok(self.departure_prob)
            && prob_ok(self.arrival_prob)
            && prob_ok(self.dropout_prob)
            && prob_ok(self.straggler_prob))
        {
            return Err(MecError::InvalidConfig(
                "churn probabilities must lie in [0, 1]".into(),
            ));
        }
        if !(self.straggler_slowdown >= 1.0 && self.straggler_slowdown.is_finite()) {
            return Err(MecError::InvalidConfig(format!(
                "straggler slowdown {} must be a finite factor >= 1",
                self.straggler_slowdown
            )));
        }
        if !((0.0..1.0).contains(&self.resource_jitter)) {
            return Err(MecError::InvalidConfig(format!(
                "resource jitter {} must lie in [0, 1)",
                self.resource_jitter
            )));
        }
        if self.min_present == 0 {
            return Err(MecError::InvalidConfig(
                "min_present must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The fate drawn for one assigned winner within a round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParticipantFate {
    /// The winner vanished mid-round.
    pub dropped_out: bool,
    /// The winner's round is slowed by the model's straggler factor.
    pub straggler: bool,
    /// Multiplicative factor on the resources (compute, bandwidth) actually available during
    /// execution, drawn from `[1 − jitter, 1 + jitter]`.
    pub resource_factor: f64,
}

/// The membership change of one inter-round churn step.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MembershipChange {
    /// Node indices that left the cluster this round.
    pub departed: Vec<usize>,
    /// Node indices that rejoined this round.
    pub arrived: Vec<usize>,
}

/// Mutable churn state of one cluster run: per-node presence plus the model's private RNG
/// stream.
///
/// All draws happen in deterministic node/slot order on the control thread; the stream is
/// seeded independently of the auction and training RNGs, so enabling a zero-probability
/// churn model reproduces the static results exactly.
#[derive(Debug, Clone)]
pub struct ChurnState {
    rng: StdRng,
    present: Vec<bool>,
}

impl ChurnState {
    /// Creates the state for `nodes` initially-present nodes.
    pub fn new(nodes: usize, seed: u64) -> Self {
        Self {
            rng: fmore_numerics::seeded_rng(seed),
            present: vec![true; nodes],
        }
    }

    /// Presence mask over the node population.
    pub fn present(&self) -> &[bool] {
        &self.present
    }

    /// Whether node `idx` is currently present.
    pub fn is_present(&self, idx: usize) -> bool {
        self.present.get(idx).copied().unwrap_or(false)
    }

    /// Number of currently present nodes.
    pub fn present_count(&self) -> usize {
        self.present.iter().filter(|&&p| p).count()
    }

    /// Indices of the currently present nodes, in node order.
    pub fn present_indices(&self) -> Vec<usize> {
        self.present
            .iter()
            .enumerate()
            .filter_map(|(i, &p)| p.then_some(i))
            .collect()
    }

    /// Advances membership by one round: present nodes depart with the model's departure
    /// probability (respecting the `min_present` floor, in node order), absent nodes rejoin
    /// with its arrival probability. If mid-round dropouts ([`ChurnState::mark_departed`])
    /// pushed the population below the floor, nodes are revived (in node order, no RNG
    /// consumed) until the floor holds again — the floor is an invariant at bid-collection
    /// time, so the cluster can never start a round churned empty.
    pub fn begin_round(&mut self, model: &ChurnModel) -> MembershipChange {
        let mut change = MembershipChange::default();
        let mut remaining = self.present_count();
        for idx in 0..self.present.len() {
            if self.present[idx] {
                // Draw unconditionally so the RNG stream does not depend on the floor.
                let departs = self.rng.gen::<f64>() < model.departure_prob;
                if departs && remaining > model.min_present {
                    self.present[idx] = false;
                    remaining -= 1;
                    change.departed.push(idx);
                }
            } else if self.rng.gen::<f64>() < model.arrival_prob {
                self.present[idx] = true;
                remaining += 1;
                change.arrived.push(idx);
            }
        }
        for idx in 0..self.present.len() {
            if remaining >= model.min_present {
                break;
            }
            if !self.present[idx] {
                self.present[idx] = true;
                remaining += 1;
                change.arrived.push(idx);
            }
        }
        change
    }

    /// Marks a node absent immediately (a mid-round dropout also leaves the cluster; it may
    /// rejoin through the arrival process — and is revived at the start of the next round if
    /// the population fell below the model's `min_present` floor).
    pub fn mark_departed(&mut self, idx: usize) {
        if let Some(slot) = self.present.get_mut(idx) {
            *slot = false;
        }
    }

    /// Draws the in-round fate of one assigned winner.
    pub fn draw_fate(&mut self, model: &ChurnModel) -> ParticipantFate {
        // Three draws in fixed order keep the stream independent of the outcomes.
        let dropped_out = self.rng.gen::<f64>() < model.dropout_prob;
        let straggler = self.rng.gen::<f64>() < model.straggler_prob;
        let unit: f64 = self.rng.gen();
        let resource_factor = 1.0 + model.resource_jitter * (2.0 * unit - 1.0);
        ParticipantFate {
            dropped_out,
            straggler,
            resource_factor,
        }
    }
}

/// Everything needed to turn the static cluster loop into a dynamic one: the churn model,
/// the server deadline, and the re-auction budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicsConfig {
    /// The churn processes.
    pub churn: ChurnModel,
    /// Server deadline per delivery wave, in simulated seconds: winners delivering later are
    /// excluded from aggregation (their payment is honoured but wasted).
    pub deadline_secs: f64,
    /// Maximum re-auction waves per round when the surviving winner set is under quota.
    pub max_reauction_waves: usize,
}

impl DynamicsConfig {
    /// A dynamics configuration with the given churn model and a deadline calibrated to the
    /// paper's hardware class (generous enough for a mid-range node, tight enough that slow
    /// stragglers miss it).
    pub fn new(churn: ChurnModel) -> Self {
        Self {
            churn,
            deadline_secs: 60.0,
            max_reauction_waves: 2,
        }
    }

    /// Returns the configuration with the deadline replaced.
    pub fn with_deadline(mut self, secs: f64) -> Self {
        self.deadline_secs = secs;
        self
    }

    /// Returns the configuration with the re-auction budget replaced.
    pub fn with_reauction_waves(mut self, waves: usize) -> Self {
        self.max_reauction_waves = waves;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), MecError> {
        self.churn.validate()?;
        // Infinity is rejected too: one failed wave would cost the server an infinite wait
        // and poison every downstream time metric. "No deadline pressure" is any finite
        // value above the slowest plausible node.
        if !(self.deadline_secs > 0.0 && self.deadline_secs.is_finite()) {
            return Err(MecError::InvalidConfig(format!(
                "deadline {} must be positive and finite",
                self.deadline_secs
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_model_changes_nothing() {
        let model = ChurnModel::stable();
        assert!(model.validate().is_ok());
        let mut state = ChurnState::new(8, 7);
        for _ in 0..10 {
            let change = state.begin_round(&model);
            assert!(change.departed.is_empty() && change.arrived.is_empty());
            let fate = state.draw_fate(&model);
            assert!(!fate.dropped_out && !fate.straggler);
            assert_eq!(fate.resource_factor, 1.0);
        }
        assert_eq!(state.present_count(), 8);
    }

    #[test]
    fn validation_catches_each_violation() {
        assert!(ChurnModel::edge_default().validate().is_ok());

        let mut m = ChurnModel::edge_default();
        m.dropout_prob = 1.5;
        assert!(m.validate().is_err());

        let mut m = ChurnModel::edge_default();
        m.straggler_slowdown = 0.5;
        assert!(m.validate().is_err());

        let mut m = ChurnModel::edge_default();
        m.resource_jitter = 1.0;
        assert!(m.validate().is_err());

        let mut m = ChurnModel::edge_default();
        m.min_present = 0;
        assert!(m.validate().is_err());

        let d = DynamicsConfig::new(ChurnModel::stable()).with_deadline(0.0);
        assert!(d.validate().is_err());
        let d = DynamicsConfig::new(ChurnModel::stable()).with_deadline(f64::INFINITY);
        assert!(
            d.validate().is_err(),
            "an infinite deadline poisons time accounting"
        );
        let d = DynamicsConfig::new(ChurnModel::stable()).with_deadline(f64::NAN);
        assert!(d.validate().is_err());
        let d = DynamicsConfig::new(ChurnModel::stable()).with_deadline(30.0);
        assert!(d.validate().is_ok());
        assert_eq!(d.deadline_secs, 30.0);
        assert_eq!(d.with_reauction_waves(5).max_reauction_waves, 5);
    }

    #[test]
    fn builders_replace_the_right_knobs() {
        let m = ChurnModel::stable()
            .with_dropout(0.2)
            .with_stragglers(0.3, 4.0)
            .with_membership(0.1, 0.5);
        assert_eq!(m.dropout_prob, 0.2);
        assert_eq!(m.straggler_prob, 0.3);
        assert_eq!(m.straggler_slowdown, 4.0);
        assert_eq!(m.departure_prob, 0.1);
        assert_eq!(m.arrival_prob, 0.5);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn membership_respects_the_floor() {
        let model = ChurnModel::stable().with_membership(1.0, 0.0);
        let mut state = ChurnState::new(6, 3);
        // Departure probability 1: everyone tries to leave, but the floor holds.
        let mut m = model;
        m.min_present = 2;
        for _ in 0..5 {
            state.begin_round(&m);
        }
        assert_eq!(state.present_count(), 2);
        // With arrivals certain, everyone returns.
        let rejoin = ChurnModel::stable().with_membership(0.0, 1.0);
        state.begin_round(&rejoin);
        assert_eq!(state.present_count(), 6);
        assert_eq!(state.present_indices().len(), 6);
    }

    #[test]
    fn floor_revives_nodes_after_mid_round_dropouts() {
        let mut model = ChurnModel::stable();
        model.min_present = 3;
        let mut state = ChurnState::new(5, 1);
        for i in 0..5 {
            state.mark_departed(i);
        }
        assert_eq!(state.present_count(), 0, "dropouts emptied the cluster");
        // stable() has arrival probability 0, so only the floor revival fires.
        let change = state.begin_round(&model);
        assert_eq!(state.present_count(), 3);
        assert_eq!(change.arrived, vec![0, 1, 2]);
        assert!(change.departed.is_empty());
        // The floor cannot exceed the population: everyone is revived, no more.
        model.min_present = 10;
        for i in 0..5 {
            state.mark_departed(i);
        }
        state.begin_round(&model);
        assert_eq!(state.present_count(), 5);
    }

    #[test]
    fn mark_departed_removes_a_node_immediately() {
        let mut state = ChurnState::new(4, 9);
        assert!(state.is_present(2));
        state.mark_departed(2);
        assert!(!state.is_present(2));
        assert_eq!(state.present_count(), 3);
        assert_eq!(state.present_indices(), vec![0, 1, 3]);
        // Out-of-range indices are ignored.
        state.mark_departed(99);
        assert!(!state.is_present(99));
    }

    #[test]
    fn fates_are_deterministic_per_seed_and_jitter_is_bounded() {
        let model = ChurnModel::edge_default();
        let draw = |seed| {
            let mut state = ChurnState::new(10, seed);
            (0..50).map(|_| state.draw_fate(&model)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
        for fate in draw(42) {
            assert!(fate.resource_factor >= 1.0 - model.resource_jitter - 1e-12);
            assert!(fate.resource_factor <= 1.0 + model.resource_jitter + 1e-12);
        }
    }

    #[test]
    fn dropout_rate_matches_the_model_roughly() {
        let model = ChurnModel::stable().with_dropout(0.3);
        let mut state = ChurnState::new(1, 11);
        let n = 2000;
        let drops = (0..n)
            .filter(|_| state.draw_fate(&model).dropped_out)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed dropout rate {rate}");
    }
}
