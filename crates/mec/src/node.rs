//! Edge nodes of the simulated cluster and their dynamic resource provision.

use fmore_auction::{NodeId, Quality};
use rand::rngs::StdRng;
use rand::Rng;

/// The resources an edge node offers in one round (Section V-C: computing power, bandwidth,
/// and data size; "nodes randomly choose different quantities of resources in each round").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceProfile {
    /// Number of CPU cores devoted to local training.
    pub cpu_cores: f64,
    /// Bandwidth towards the aggregator in Mbps.
    pub bandwidth_mbps: f64,
    /// Number of local training samples offered.
    pub data_size: f64,
}

impl ResourceProfile {
    /// Normalises the profile against per-dimension maxima into a quality vector
    /// `(q1, q2, q3) ∈ [0, 1]³` in the paper's order (computing power, bandwidth, data size).
    pub fn to_quality(&self, max: &ResourceProfile) -> Quality {
        let mut out = Vec::with_capacity(3);
        self.quality_into(max, &mut out);
        Quality::new(out)
    }

    /// Allocation-free form of [`ResourceProfile::to_quality`]: writes the normalised
    /// components into `out` (cleared first, capacity reused) — the form the
    /// population-scale bid path cycles through per node.
    #[inline(always)]
    pub fn quality_into(&self, max: &ResourceProfile, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.to_quality_array(max));
    }

    /// Stack-array form of [`ResourceProfile::quality_into`] — same normalisation, no
    /// heap buffer; the population-scale bid loop keeps the round's capacity in registers.
    #[inline(always)]
    pub fn to_quality_array(&self, max: &ResourceProfile) -> [f64; 3] {
        let norm = |v: f64, m: f64| {
            if m > 0.0 {
                (v / m).clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        [
            norm(self.cpu_cores, max.cpu_cores),
            norm(self.bandwidth_mbps, max.bandwidth_mbps),
            norm(self.data_size, max.data_size),
        ]
    }
}

/// Per-node ranges from which the round-by-round resource provision is drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceRanges {
    /// Min/max CPU cores.
    pub cpu_cores: (f64, f64),
    /// Min/max bandwidth in Mbps.
    pub bandwidth_mbps: (f64, f64),
    /// Min/max offered data size in samples.
    pub data_size: (f64, f64),
}

impl ResourceRanges {
    /// The paper's cluster hardware class: Intel i7 (up to 8 cores), 1 Gbps Ethernet shared
    /// with other traffic, and data allocated over `[2000, 10000]` samples.
    pub fn paper_cluster() -> Self {
        Self {
            cpu_cores: (1.0, 8.0),
            bandwidth_mbps: (100.0, 1000.0),
            data_size: (2000.0, 10_000.0),
        }
    }

    /// The per-dimension maxima, used for normalisation.
    #[inline]
    pub fn maxima(&self) -> ResourceProfile {
        ResourceProfile {
            cpu_cores: self.cpu_cores.1,
            bandwidth_mbps: self.bandwidth_mbps.1,
            data_size: self.data_size.1,
        }
    }

    pub(crate) fn draw(&self, rng: &mut StdRng) -> ResourceProfile {
        let sample = |(lo, hi): (f64, f64), rng: &mut StdRng| {
            if hi > lo {
                rng.gen_range(lo..=hi)
            } else {
                hi
            }
        };
        ResourceProfile {
            cpu_cores: sample(self.cpu_cores, rng).round().max(1.0),
            bandwidth_mbps: sample(self.bandwidth_mbps, rng),
            data_size: sample(self.data_size, rng).round(),
        }
    }

    /// Validates that every range is ordered and positive.
    pub fn is_valid(&self) -> bool {
        let ok = |(lo, hi): (f64, f64)| lo > 0.0 && hi >= lo && hi.is_finite();
        ok(self.cpu_cores) && ok(self.bandwidth_mbps) && ok(self.data_size)
    }
}

/// One edge node of the simulated cluster.
#[derive(Debug, Clone)]
pub struct MecNode {
    id: NodeId,
    ranges: ResourceRanges,
    theta: f64,
    rng: StdRng,
    current: ResourceProfile,
}

impl MecNode {
    /// Creates a node with its resource ranges, private cost parameter, and RNG seed.
    pub fn new(id: NodeId, ranges: ResourceRanges, theta: f64, seed: u64) -> Self {
        let mut rng = fmore_numerics::seeded_rng(seed);
        let current = ranges.draw(&mut rng);
        Self {
            id,
            ranges,
            theta,
            rng,
            current,
        }
    }

    /// The node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's private cost parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The resources the node offers in the current round.
    pub fn current(&self) -> ResourceProfile {
        self.current
    }

    /// The node's resource ranges.
    pub fn ranges(&self) -> &ResourceRanges {
        &self.ranges
    }

    /// Re-draws the resources offered for the next round (the dynamic provision of MEC).
    pub fn refresh(&mut self) {
        self.current = self.ranges.draw(&mut self.rng);
    }

    /// The node's current quality vector, normalised against `maxima`.
    pub fn quality(&self, maxima: &ResourceProfile) -> Quality {
        self.current.to_quality(maxima)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ranges_are_valid_and_ordered() {
        let r = ResourceRanges::paper_cluster();
        assert!(r.is_valid());
        let max = r.maxima();
        assert_eq!(max.cpu_cores, 8.0);
        assert_eq!(max.bandwidth_mbps, 1000.0);
        assert_eq!(max.data_size, 10_000.0);
    }

    #[test]
    fn invalid_ranges_are_detected() {
        let bad = ResourceRanges {
            cpu_cores: (0.0, 8.0),
            ..ResourceRanges::paper_cluster()
        };
        assert!(!bad.is_valid());
        let bad = ResourceRanges {
            data_size: (100.0, 50.0),
            ..ResourceRanges::paper_cluster()
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn node_draws_resources_within_ranges() {
        let ranges = ResourceRanges::paper_cluster();
        let mut node = MecNode::new(NodeId(1), ranges, 0.4, 11);
        for _ in 0..20 {
            node.refresh();
            let p = node.current();
            assert!((1.0..=8.0).contains(&p.cpu_cores));
            assert!((100.0..=1000.0).contains(&p.bandwidth_mbps));
            assert!((2000.0..=10_000.0).contains(&p.data_size));
        }
        assert_eq!(node.id(), NodeId(1));
        assert!((node.theta() - 0.4).abs() < 1e-12);
        assert!(node.ranges().is_valid());
    }

    #[test]
    fn refresh_changes_the_offer() {
        let mut node = MecNode::new(NodeId(0), ResourceRanges::paper_cluster(), 0.3, 5);
        let first = node.current();
        node.refresh();
        // Three continuous draws are essentially never identical.
        assert_ne!(first, node.current());
    }

    #[test]
    fn quality_is_normalised_into_unit_cube() {
        let ranges = ResourceRanges::paper_cluster();
        let node = MecNode::new(NodeId(2), ranges, 0.5, 3);
        let q = node.quality(&ranges.maxima());
        assert_eq!(q.dims(), 3);
        assert!(q.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        // Degenerate maxima give zero quality rather than NaN.
        let zero = ResourceProfile {
            cpu_cores: 0.0,
            bandwidth_mbps: 0.0,
            data_size: 0.0,
        };
        let q0 = node.current().to_quality(&zero);
        assert_eq!(q0.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn node_draws_are_deterministic_per_seed() {
        let ranges = ResourceRanges::paper_cluster();
        let mut a = MecNode::new(NodeId(0), ranges, 0.3, 42);
        let mut b = MecNode::new(NodeId(0), ranges, 0.3, 42);
        for _ in 0..5 {
            a.refresh();
            b.refresh();
            assert_eq!(a.current(), b.current());
        }
    }
}
