//! The simulated 32-machine deployment: per-round three-dimensional auction, federated
//! training, and wall-clock accounting.
//!
//! The cluster is a thin driver over the shared round engine of [`fmore_fl::engine`]: bids
//! are the capacity-capped equilibrium bids of
//! [`EquilibriumSolver::capped_bid`], winner determination goes through the same batched
//! [`fmore_fl::engine::auction_select`] stage the federated trainer uses, and local training
//! runs on the engine's worker pool inside the embedded [`FederatedTrainer`]. The only
//! cluster-specific parts left are the three-dimensional resource model and the wall-clock
//! accounting.

use crate::error::MecError;
use crate::ledger::PaymentLedger;
use crate::node::{MecNode, ResourceRanges};
use crate::time_model::TimeModel;
use fmore_auction::{
    Additive, Auction, EquilibriumSolver, LinearCost, NodeId, PricingRule, ScoringRule,
    SelectionRule,
};
use fmore_fl::config::{FlConfig, ModelChoice};
use fmore_fl::engine::{self, RoundEngine};
use fmore_fl::metrics::{RoundMetrics, WinnerInfo};
use fmore_fl::selection::SelectionStrategy;
use fmore_fl::trainer::FederatedTrainer;
use fmore_ml::dataset::TaskKind;
use fmore_ml::partition::PartitionConfig;
use fmore_numerics::rng::{derive_seed, sample_indices};
use fmore_numerics::{seeded_rng, Distribution1D, UniformDist};
use rand::rngs::StdRng;

/// Which scheme the cluster runs (Fig. 12–13 compare FMore against RandFL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterStrategy {
    /// FMore: three-dimensional auction per round, first-price payment.
    FMore,
    /// RandFL: uniform random selection, no payments.
    RandFL,
}

impl ClusterStrategy {
    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterStrategy::FMore => "FMore",
            ClusterStrategy::RandFL => "RandFL",
        }
    }
}

/// Configuration of the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of edge nodes (the paper uses 31 plus one aggregator).
    pub nodes: usize,
    /// Winners per round `K`.
    pub winners_per_round: usize,
    /// Federated-learning configuration driving the actual training.
    pub fl: FlConfig,
    /// Per-node resource ranges.
    pub resources: ResourceRanges,
    /// Additive scoring weights over (computing power, bandwidth, data size); the paper uses
    /// `(0.4, 0.3, 0.3)`.
    pub scoring_weights: Vec<f64>,
    /// Linear private-cost coefficients over the same three resources.
    pub cost_coefficients: Vec<f64>,
    /// Wall-clock time model.
    pub time_model: TimeModel,
}

impl ClusterConfig {
    /// The paper's deployment: 31 nodes, CIFAR-10 task, additive scoring `(0.4, 0.3, 0.3)`.
    pub fn paper_cluster() -> Self {
        let mut fl = FlConfig::paper_simulation(TaskKind::Cifar10);
        fl.clients = 31;
        fl.winners_per_round = 10;
        fl.partition = PartitionConfig {
            clients: 31,
            size_range: (100, 600),
            category_range: (2, 10),
        };
        fl.train_samples = 8_000;
        fl.test_samples = 1_000;
        Self {
            nodes: 31,
            winners_per_round: 10,
            fl,
            resources: ResourceRanges::paper_cluster(),
            scoring_weights: vec![0.4, 0.3, 0.3],
            cost_coefficients: vec![0.3, 0.3, 0.4],
            time_model: TimeModel::paper_cluster(),
        }
    }

    /// A small configuration for tests and doc examples.
    pub fn fast_test() -> Self {
        let mut fl = FlConfig::fast_test(TaskKind::MnistO);
        fl.clients = 8;
        fl.winners_per_round = 3;
        fl.partition = PartitionConfig {
            clients: 8,
            size_range: (20, 60),
            category_range: (2, 10),
        };
        Self {
            nodes: 8,
            winners_per_round: 3,
            fl,
            resources: ResourceRanges::paper_cluster(),
            scoring_weights: vec![0.4, 0.3, 0.3],
            cost_coefficients: vec![0.3, 0.3, 0.4],
            time_model: TimeModel::paper_cluster(),
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), MecError> {
        if self.nodes == 0 {
            return Err(MecError::InvalidConfig("nodes must be positive".into()));
        }
        if self.winners_per_round == 0 || self.winners_per_round > self.nodes {
            return Err(MecError::InvalidConfig(format!(
                "winners_per_round {} must be in 1..={}",
                self.winners_per_round, self.nodes
            )));
        }
        if self.fl.clients != self.nodes {
            return Err(MecError::InvalidConfig(format!(
                "fl.clients {} must equal nodes {}",
                self.fl.clients, self.nodes
            )));
        }
        if self.scoring_weights.len() != 3 || self.cost_coefficients.len() != 3 {
            return Err(MecError::InvalidConfig(
                "cluster scoring and cost are defined over exactly three resources".into(),
            ));
        }
        if !self.resources.is_valid() {
            return Err(MecError::InvalidConfig("invalid resource ranges".into()));
        }
        self.fl.validate()?;
        Ok(())
    }
}

/// Metrics of one cluster round: the learning metrics plus simulated wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRound {
    /// Learning metrics (accuracy, loss, winners, payments).
    pub learning: RoundMetrics,
    /// Duration of this round in simulated seconds.
    pub round_secs: f64,
    /// Cumulative training time up to and including this round.
    pub cumulative_secs: f64,
}

/// The full history of a cluster run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterHistory {
    /// Per-round records in order.
    pub rounds: Vec<ClusterRound>,
}

impl ClusterHistory {
    /// Total simulated training time.
    pub fn total_time_secs(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.cumulative_secs)
    }

    /// Accuracy after every round.
    pub fn accuracy_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.learning.accuracy).collect()
    }

    /// Loss after every round.
    pub fn loss_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.learning.loss).collect()
    }

    /// Cumulative time after every round.
    pub fn cumulative_time_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.cumulative_secs).collect()
    }

    /// Accuracy after the final round.
    pub fn final_accuracy(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.learning.accuracy)
    }

    /// Simulated time needed to first reach `target` accuracy, if ever reached
    /// (the time-to-accuracy metric of Fig. 13 right).
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.rounds
            .iter()
            .find(|r| r.learning.accuracy >= target)
            .map(|r| r.cumulative_secs)
    }
}

/// The simulated MEC deployment.
pub struct MecCluster {
    config: ClusterConfig,
    strategy: ClusterStrategy,
    nodes: Vec<MecNode>,
    trainer: FederatedTrainer,
    solver: Option<EquilibriumSolver>,
    auction: Option<Auction>,
    ledger: PaymentLedger,
    rng: StdRng,
    elapsed_secs: f64,
}

impl std::fmt::Debug for MecCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MecCluster")
            .field("strategy", &self.strategy.name())
            .field("nodes", &self.nodes.len())
            .field("winners_per_round", &self.config.winners_per_round)
            .field("elapsed_secs", &self.elapsed_secs)
            .finish()
    }
}

impl MecCluster {
    /// Builds the cluster: creates the nodes with random resource ranges and private costs,
    /// the embedded federated trainer, and (for FMore) the three-dimensional auction.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidConfig`] for inconsistent configurations and propagates
    /// construction failures of the trainer or the auction components.
    pub fn new(
        config: ClusterConfig,
        strategy: ClusterStrategy,
        seed: u64,
    ) -> Result<Self, MecError> {
        Self::with_engine(config, strategy, seed, RoundEngine::default())
    }

    /// Builds the cluster with a caller-supplied round engine (shared pool, private pool,
    /// inline, or spawn-per-round); the engine drives the embedded trainer's parallel local
    /// training. The engine choice never affects results.
    ///
    /// # Errors
    ///
    /// As for [`MecCluster::new`].
    pub fn with_engine(
        config: ClusterConfig,
        strategy: ClusterStrategy,
        seed: u64,
        round_engine: RoundEngine,
    ) -> Result<Self, MecError> {
        config.validate()?;
        let mut rng = seeded_rng(seed);
        let theta_dist = UniformDist::new(config.fl.theta_range.0, config.fl.theta_range.1)
            .map_err(fmore_auction::AuctionError::from)?;
        let nodes: Vec<MecNode> = (0..config.nodes)
            .map(|i| {
                let theta = theta_dist.sample(&mut rng);
                MecNode::new(
                    NodeId(i as u64),
                    config.resources,
                    theta,
                    derive_seed(seed, 0x1000 + i as u64),
                )
            })
            .collect();

        // The trainer is always constructed with a pass-through strategy; the cluster drives
        // selection itself and injects the winners via `run_round_with`.
        let mut fl_config = config.fl.clone();
        if matches!(fl_config.model, ModelChoice::PaperModel) && fl_config.train_samples > 50_000 {
            fl_config.model = ModelChoice::FastSurrogate;
        }
        let trainer = FederatedTrainer::with_engine(
            fl_config,
            SelectionStrategy::random(),
            derive_seed(seed, 0x2000),
            round_engine,
        )?;

        let (solver, auction) = match strategy {
            ClusterStrategy::FMore => {
                let scoring = Additive::new(config.scoring_weights.clone())?;
                let cost = LinearCost::new(config.cost_coefficients.clone())?;
                let solver = EquilibriumSolver::builder()
                    .scoring(scoring.clone())
                    .cost(cost)
                    .theta(theta_dist)
                    .bounds(vec![(0.0, 1.0); 3])
                    .population(config.nodes)
                    .winners(config.winners_per_round)
                    .grid_size(128)
                    .build()?;
                let auction = Auction::new(
                    ScoringRule::new(scoring),
                    config.winners_per_round,
                    SelectionRule::TopK,
                    PricingRule::FirstPrice,
                );
                (Some(solver), Some(auction))
            }
            ClusterStrategy::RandFL => (None, None),
        };

        Ok(Self {
            config,
            strategy,
            nodes,
            trainer,
            solver,
            auction,
            ledger: PaymentLedger::new(),
            rng,
            elapsed_secs: 0.0,
        })
    }

    /// The nodes of the cluster.
    pub fn nodes(&self) -> &[MecNode] {
        &self.nodes
    }

    /// The payment ledger accumulated so far.
    pub fn ledger(&self) -> &PaymentLedger {
        &self.ledger
    }

    /// The strategy the cluster runs.
    pub fn strategy(&self) -> ClusterStrategy {
        self.strategy
    }

    /// Total simulated time elapsed so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_secs
    }

    /// Runs `rounds` cluster rounds.
    ///
    /// # Errors
    ///
    /// Propagates auction and training failures.
    pub fn run(&mut self, rounds: usize) -> Result<ClusterHistory, MecError> {
        let mut history = ClusterHistory::default();
        for _ in 0..rounds {
            history.rounds.push(self.run_round()?);
        }
        Ok(history)
    }

    /// Runs one cluster round: resource refresh, selection (auction or random), local
    /// training, aggregation, and time accounting.
    ///
    /// # Errors
    ///
    /// Propagates auction and training failures.
    pub fn run_round(&mut self) -> Result<ClusterRound, MecError> {
        for node in &mut self.nodes {
            node.refresh();
        }
        self.trainer.refresh_clients();

        let maxima = self.config.resources.maxima();
        let (winners, all_scores) = match self.strategy {
            ClusterStrategy::FMore => {
                // Bid collection: one capacity-capped equilibrium bid per node, then the
                // shared batched auction stage — the same pipeline the trainer runs, with the
                // cluster's own award-to-winner mapping plugged in.
                let solver = self
                    .solver
                    .as_ref()
                    .expect("FMore cluster always has a solver");
                let auction = self
                    .auction
                    .as_ref()
                    .expect("FMore cluster always has an auction");
                let mut bids = Vec::with_capacity(self.nodes.len());
                for node in &self.nodes {
                    let capacity = node.quality(&maxima);
                    bids.push(solver.capped_bid(node.id(), node.theta(), capacity.as_slice())?);
                }
                let nodes = &self.nodes;
                let clients = self.trainer.clients();
                engine::auction_select(auction, bids, &mut self.rng, |award| {
                    winner_from_award(
                        nodes,
                        clients,
                        maxima.data_size,
                        award.node,
                        award.score,
                        award.payment,
                    )
                })?
            }
            ClusterStrategy::RandFL => {
                let selected = sample_indices(
                    self.nodes.len(),
                    self.config.winners_per_round,
                    &mut self.rng,
                );
                let winners: Vec<WinnerInfo> = selected
                    .into_iter()
                    .map(|idx| {
                        winner_from_award(
                            &self.nodes,
                            self.trainer.clients(),
                            maxima.data_size,
                            NodeId(idx as u64),
                            0.0,
                            0.0,
                        )
                    })
                    .collect();
                (winners, Vec::new())
            }
        };

        // Wall-clock accounting: the declared data size of each winner trains on its node.
        let participants: Vec<(crate::node::ResourceProfile, f64)> = winners
            .iter()
            .map(|w| {
                let node = &self.nodes[w.client];
                (node.current(), node.current().data_size)
            })
            .collect();
        let round_secs = self
            .config
            .time_model
            .round_secs(&participants, self.config.fl.local_epochs);
        self.elapsed_secs += round_secs;

        for w in &winners {
            if w.payment > 0.0 {
                self.ledger.record(w.node, w.payment);
            }
        }

        let learning = self.trainer.run_round_with(winners, all_scores);
        Ok(ClusterRound {
            learning,
            round_secs,
            cumulative_secs: self.elapsed_secs,
        })
    }
}

/// Maps an auction award (or a random pick) onto the federated trainer's client list: the
/// node trains on a fraction of its data shard proportional to the data resource it offered
/// this round.
fn winner_from_award(
    nodes: &[MecNode],
    clients: &[fmore_fl::EdgeClient],
    max_data_size: f64,
    node_id: NodeId,
    score: f64,
    payment: f64,
) -> WinnerInfo {
    let idx = node_id.0 as usize;
    let node = &nodes[idx];
    let client = &clients[idx];
    let fraction = (node.current().data_size / max_data_size).clamp(0.05, 1.0);
    let data_size = ((client.data_size() as f64) * fraction).round().max(1.0) as usize;
    WinnerInfo {
        client: idx,
        node: node_id,
        data_size: data_size.min(client.data_size().max(1)),
        categories: client.categories(),
        score,
        payment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_catches_mistakes() {
        assert!(ClusterConfig::paper_cluster().validate().is_ok());
        assert!(ClusterConfig::fast_test().validate().is_ok());

        let mut c = ClusterConfig::fast_test();
        c.nodes = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::fast_test();
        c.winners_per_round = 100;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::fast_test();
        c.fl.clients = 3;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::fast_test();
        c.scoring_weights = vec![0.5, 0.5];
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::fast_test();
        c.resources.cpu_cores = (0.0, 4.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn paper_cluster_matches_section_v_c() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(c.nodes, 31);
        assert_eq!(c.scoring_weights, vec![0.4, 0.3, 0.3]);
        assert_eq!(c.fl.task, TaskKind::Cifar10);
        assert_eq!(c.resources.data_size, (2000.0, 10_000.0));
    }

    #[test]
    fn fmore_cluster_round_selects_pays_and_times() {
        let mut cluster =
            MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::FMore, 1).unwrap();
        let round = cluster.run_round().unwrap();
        assert_eq!(round.learning.winners.len(), 3);
        assert!(round.learning.winners.iter().all(|w| w.payment > 0.0));
        assert_eq!(round.learning.all_scores.len(), 8);
        assert!(round.round_secs > 0.0);
        assert_eq!(round.cumulative_secs, round.round_secs);
        assert_eq!(cluster.ledger().distinct_winners(), 3);
        assert!(format!("{cluster:?}").contains("FMore"));
    }

    #[test]
    fn randfl_cluster_round_has_no_payments() {
        let mut cluster =
            MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::RandFL, 2).unwrap();
        let round = cluster.run_round().unwrap();
        assert_eq!(round.learning.winners.len(), 3);
        assert!(round.learning.winners.iter().all(|w| w.payment == 0.0));
        assert!(round.learning.all_scores.is_empty());
        assert_eq!(cluster.ledger().total(), 0.0);
        assert_eq!(cluster.strategy(), ClusterStrategy::RandFL);
    }

    #[test]
    fn history_accumulates_time_and_accuracy() {
        let mut cluster =
            MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::FMore, 3).unwrap();
        let history = cluster.run(3).unwrap();
        assert_eq!(history.rounds.len(), 3);
        let times = history.cumulative_time_series();
        assert!(
            times.windows(2).all(|w| w[1] > w[0]),
            "cumulative time must increase"
        );
        assert_eq!(history.total_time_secs(), *times.last().unwrap());
        assert_eq!(history.accuracy_series().len(), 3);
        assert_eq!(history.loss_series().len(), 3);
        assert!(history.final_accuracy() >= 0.0);
        assert_eq!(cluster.elapsed_secs(), history.total_time_secs());
        // Time-to-accuracy of an unreachable target is None.
        assert!(history.time_to_accuracy(2.0).is_none());
        assert_eq!(
            history.time_to_accuracy(0.0),
            Some(history.rounds[0].cumulative_secs)
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            let mut c =
                MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::FMore, seed).unwrap();
            c.run(2).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn fmore_winners_have_top_scores() {
        let mut cluster =
            MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::FMore, 4).unwrap();
        let round = cluster.run_round().unwrap();
        let min_winner = round
            .learning
            .winners
            .iter()
            .map(|w| w.score)
            .fold(f64::INFINITY, f64::min);
        let beaten = round
            .learning
            .all_scores
            .iter()
            .filter(|&&s| s > min_winner + 1e-9)
            .count();
        assert!(beaten < round.learning.winners.len());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(ClusterStrategy::FMore.name(), "FMore");
        assert_eq!(ClusterStrategy::RandFL.name(), "RandFL");
    }
}
