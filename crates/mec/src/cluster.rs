//! The simulated 32-machine deployment: per-round three-dimensional auction, federated
//! training, and wall-clock accounting.
//!
//! The cluster is a thin driver over the shared round engine of [`fmore_fl::engine`]: bids
//! are the capacity-capped equilibrium bids of
//! [`EquilibriumSolver::capped_bid`], winner determination goes through the same batched
//! [`fmore_fl::engine::auction_select`] stage the federated trainer uses, and local training
//! runs on the engine's worker pool inside the embedded [`FederatedTrainer`]. The only
//! cluster-specific parts left are the three-dimensional resource model and the wall-clock
//! accounting.

use crate::dynamics::{ChurnState, DynamicsConfig};
use crate::error::MecError;
use crate::ledger::PaymentLedger;
use crate::node::{MecNode, ResourceRanges};
use crate::time_model::TimeModel;
use fmore_auction::{
    Additive, Auction, EquilibriumSolver, LinearCost, NodeId, PricingRule, ScoringRule,
    SelectionRule,
};
use fmore_fl::config::{FlConfig, ModelChoice};
use fmore_fl::engine::{self, apply_deadline, AuctionStage, ParticipantTiming, RoundEngine};
use fmore_fl::metrics::{RoundMetrics, RoundOutcome, WinnerInfo};
use fmore_fl::selection::SelectionStrategy;
use fmore_fl::trainer::FederatedTrainer;
use fmore_ml::dataset::TaskKind;
use fmore_ml::partition::PartitionConfig;
use fmore_numerics::rng::{derive_seed, sample_indices};
use fmore_numerics::{seeded_rng, Distribution1D, UniformDist};
use rand::rngs::StdRng;

/// Which scheme the cluster runs (Fig. 12–13 compare FMore against RandFL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterStrategy {
    /// FMore: three-dimensional auction per round, first-price payment.
    FMore,
    /// RandFL: uniform random selection, no payments.
    RandFL,
}

impl ClusterStrategy {
    /// Name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterStrategy::FMore => "FMore",
            ClusterStrategy::RandFL => "RandFL",
        }
    }
}

/// Configuration of the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of edge nodes (the paper uses 31 plus one aggregator).
    pub nodes: usize,
    /// Winners per round `K`.
    pub winners_per_round: usize,
    /// Federated-learning configuration driving the actual training.
    pub fl: FlConfig,
    /// Per-node resource ranges.
    pub resources: ResourceRanges,
    /// Additive scoring weights over (computing power, bandwidth, data size); the paper uses
    /// `(0.4, 0.3, 0.3)`.
    pub scoring_weights: Vec<f64>,
    /// Linear private-cost coefficients over the same three resources.
    pub cost_coefficients: Vec<f64>,
    /// Wall-clock time model.
    pub time_model: TimeModel,
    /// Churn + deadline dynamics; `None` runs the static loop (every winner finishes).
    pub dynamics: Option<DynamicsConfig>,
}

impl ClusterConfig {
    /// The paper's deployment: 31 nodes, CIFAR-10 task, additive scoring `(0.4, 0.3, 0.3)`.
    pub fn paper_cluster() -> Self {
        let mut fl = FlConfig::paper_simulation(TaskKind::Cifar10);
        fl.clients = 31;
        fl.winners_per_round = 10;
        fl.partition = PartitionConfig {
            clients: 31,
            size_range: (100, 600),
            category_range: (2, 10),
        };
        fl.train_samples = 8_000;
        fl.test_samples = 1_000;
        Self {
            nodes: 31,
            winners_per_round: 10,
            fl,
            resources: ResourceRanges::paper_cluster(),
            scoring_weights: vec![0.4, 0.3, 0.3],
            cost_coefficients: vec![0.3, 0.3, 0.4],
            time_model: TimeModel::paper_cluster(),
            dynamics: None,
        }
    }

    /// A small configuration for tests and doc examples.
    pub fn fast_test() -> Self {
        let mut fl = FlConfig::fast_test(TaskKind::MnistO);
        fl.clients = 8;
        fl.winners_per_round = 3;
        fl.partition = PartitionConfig {
            clients: 8,
            size_range: (20, 60),
            category_range: (2, 10),
        };
        Self {
            nodes: 8,
            winners_per_round: 3,
            fl,
            resources: ResourceRanges::paper_cluster(),
            scoring_weights: vec![0.4, 0.3, 0.3],
            cost_coefficients: vec![0.3, 0.3, 0.4],
            time_model: TimeModel::paper_cluster(),
            dynamics: None,
        }
    }

    /// Returns the configuration with churn/deadline dynamics attached — the switch that
    /// turns the static round loop into the dynamic one described in
    /// [`crate::dynamics`].
    pub fn with_dynamics(mut self, dynamics: DynamicsConfig) -> Self {
        self.dynamics = Some(dynamics);
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), MecError> {
        if self.nodes == 0 {
            return Err(MecError::InvalidConfig("nodes must be positive".into()));
        }
        if self.winners_per_round == 0 || self.winners_per_round > self.nodes {
            return Err(MecError::InvalidConfig(format!(
                "winners_per_round {} must be in 1..={}",
                self.winners_per_round, self.nodes
            )));
        }
        if self.fl.clients != self.nodes {
            return Err(MecError::InvalidConfig(format!(
                "fl.clients {} must equal nodes {}",
                self.fl.clients, self.nodes
            )));
        }
        if self.scoring_weights.len() != 3 || self.cost_coefficients.len() != 3 {
            return Err(MecError::InvalidConfig(
                "cluster scoring and cost are defined over exactly three resources".into(),
            ));
        }
        if !self.resources.is_valid() {
            return Err(MecError::InvalidConfig("invalid resource ranges".into()));
        }
        if let Some(dynamics) = &self.dynamics {
            dynamics.validate()?;
        }
        self.fl.validate()?;
        Ok(())
    }
}

/// Metrics of one cluster round: the learning metrics plus simulated wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRound {
    /// Learning metrics (accuracy, loss, winners, payments).
    pub learning: RoundMetrics,
    /// Duration of this round in simulated seconds.
    pub round_secs: f64,
    /// Cumulative training time up to and including this round.
    pub cumulative_secs: f64,
}

/// The full history of a cluster run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterHistory {
    /// Per-round records in order.
    pub rounds: Vec<ClusterRound>,
}

impl ClusterHistory {
    /// Total simulated training time.
    pub fn total_time_secs(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.cumulative_secs)
    }

    /// Accuracy after every round.
    pub fn accuracy_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.learning.accuracy).collect()
    }

    /// Loss after every round.
    pub fn loss_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.learning.loss).collect()
    }

    /// Cumulative time after every round.
    pub fn cumulative_time_series(&self) -> Vec<f64> {
        self.rounds.iter().map(|r| r.cumulative_secs).collect()
    }

    /// Accuracy after the final round.
    pub fn final_accuracy(&self) -> f64 {
        self.rounds.last().map_or(0.0, |r| r.learning.accuracy)
    }

    /// Simulated time needed to first reach `target` accuracy, if ever reached
    /// (the time-to-accuracy metric of Fig. 13 right).
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.rounds
            .iter()
            .find(|r| r.learning.accuracy >= target)
            .map(|r| r.cumulative_secs)
    }

    /// Element-wise run totals of the per-round churn accounting (all zeros for static
    /// runs).
    pub fn churn_totals(&self) -> RoundOutcome {
        RoundOutcome::accumulate(self.rounds.iter().map(|r| &r.learning.outcome))
    }

    /// Total mid-round dropouts over the run (0 for static runs).
    pub fn total_dropouts(&self) -> usize {
        self.churn_totals().dropouts
    }

    /// Total straggler events over the run.
    pub fn total_stragglers(&self) -> usize {
        self.churn_totals().stragglers
    }

    /// Total deadline misses over the run.
    pub fn total_deadline_misses(&self) -> usize {
        self.churn_totals().deadline_misses
    }

    /// Total re-auction waves over the run.
    pub fn total_reauction_waves(&self) -> usize {
        self.churn_totals().reauction_waves
    }

    /// Total winners recruited by re-auction over the run.
    pub fn total_replacements(&self) -> usize {
        self.churn_totals().replacements
    }

    /// Total payment promised for updates that never aggregated.
    pub fn total_wasted_payment(&self) -> f64 {
        self.churn_totals().wasted_payment
    }

    /// Mean per-round completion rate (1.0 for static runs and empty histories).
    pub fn mean_completion_rate(&self) -> f64 {
        RoundOutcome::mean_completion_rate(self.rounds.iter().map(|r| &r.learning.outcome))
    }
}

/// The simulated MEC deployment.
pub struct MecCluster {
    config: ClusterConfig,
    strategy: ClusterStrategy,
    nodes: Vec<MecNode>,
    trainer: FederatedTrainer,
    solver: Option<EquilibriumSolver>,
    auction: Option<Auction>,
    ledger: PaymentLedger,
    churn: Option<ChurnState>,
    rng: StdRng,
    elapsed_secs: f64,
}

impl std::fmt::Debug for MecCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MecCluster")
            .field("strategy", &self.strategy.name())
            .field("nodes", &self.nodes.len())
            .field("winners_per_round", &self.config.winners_per_round)
            .field("elapsed_secs", &self.elapsed_secs)
            .finish()
    }
}

impl MecCluster {
    /// Builds the cluster: creates the nodes with random resource ranges and private costs,
    /// the embedded federated trainer, and (for FMore) the three-dimensional auction.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidConfig`] for inconsistent configurations and propagates
    /// construction failures of the trainer or the auction components.
    pub fn new(
        config: ClusterConfig,
        strategy: ClusterStrategy,
        seed: u64,
    ) -> Result<Self, MecError> {
        Self::with_engine(config, strategy, seed, RoundEngine::default())
    }

    /// Builds the cluster with a caller-supplied round engine (shared pool, private pool,
    /// inline, or spawn-per-round); the engine drives the embedded trainer's parallel local
    /// training. The engine choice never affects results.
    ///
    /// # Errors
    ///
    /// As for [`MecCluster::new`].
    pub fn with_engine(
        config: ClusterConfig,
        strategy: ClusterStrategy,
        seed: u64,
        round_engine: RoundEngine,
    ) -> Result<Self, MecError> {
        config.validate()?;
        let mut rng = seeded_rng(seed);
        let theta_dist = UniformDist::new(config.fl.theta_range.0, config.fl.theta_range.1)
            .map_err(fmore_auction::AuctionError::from)?;
        let nodes: Vec<MecNode> = (0..config.nodes)
            .map(|i| {
                let theta = theta_dist.sample(&mut rng);
                MecNode::new(
                    NodeId(i as u64),
                    config.resources,
                    theta,
                    derive_seed(seed, 0x1000 + i as u64),
                )
            })
            .collect();

        // The trainer is always constructed with a pass-through strategy; the cluster drives
        // selection itself and injects the winners via `run_round_with`.
        let mut fl_config = config.fl.clone();
        if matches!(fl_config.model, ModelChoice::PaperModel) && fl_config.train_samples > 50_000 {
            fl_config.model = ModelChoice::FastSurrogate;
        }
        let trainer = FederatedTrainer::with_engine(
            fl_config,
            SelectionStrategy::random(),
            derive_seed(seed, 0x2000),
            round_engine,
        )?;

        let (solver, auction) = match strategy {
            ClusterStrategy::FMore => {
                let scoring = Additive::new(config.scoring_weights.clone())?;
                let cost = LinearCost::new(config.cost_coefficients.clone())?;
                let solver = EquilibriumSolver::builder()
                    .scoring(scoring.clone())
                    .cost(cost)
                    .theta(theta_dist)
                    .bounds(vec![(0.0, 1.0); 3])
                    .population(config.nodes)
                    .winners(config.winners_per_round)
                    .grid_size(128)
                    .build()?;
                let auction = Auction::new(
                    ScoringRule::new(scoring),
                    config.winners_per_round,
                    SelectionRule::TopK,
                    PricingRule::FirstPrice,
                );
                (Some(solver), Some(auction))
            }
            ClusterStrategy::RandFL => (None, None),
        };

        // The churn stream is seeded independently of the node, trainer, and auction RNGs,
        // so attaching a zero-probability churn model perturbs nothing else.
        let churn = config
            .dynamics
            .as_ref()
            .map(|_| ChurnState::new(config.nodes, derive_seed(seed, 0x3000)));

        Ok(Self {
            config,
            strategy,
            nodes,
            trainer,
            solver,
            auction,
            ledger: PaymentLedger::new(),
            churn,
            rng,
            elapsed_secs: 0.0,
        })
    }

    /// The churn state, if dynamics are enabled.
    pub fn churn(&self) -> Option<&ChurnState> {
        self.churn.as_ref()
    }

    /// The nodes of the cluster.
    pub fn nodes(&self) -> &[MecNode] {
        &self.nodes
    }

    /// The payment ledger accumulated so far.
    pub fn ledger(&self) -> &PaymentLedger {
        &self.ledger
    }

    /// The strategy the cluster runs.
    pub fn strategy(&self) -> ClusterStrategy {
        self.strategy
    }

    /// Total simulated time elapsed so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_secs
    }

    /// Runs `rounds` cluster rounds.
    ///
    /// # Errors
    ///
    /// Propagates auction and training failures.
    pub fn run(&mut self, rounds: usize) -> Result<ClusterHistory, MecError> {
        let mut history = ClusterHistory::default();
        for _ in 0..rounds {
            history.rounds.push(self.run_round()?);
        }
        Ok(history)
    }

    /// Runs one cluster round: resource refresh, selection (auction or random), local
    /// training, aggregation, and time accounting. With [`ClusterConfig::dynamics`] attached
    /// the round is churn-capable: nodes depart/arrive between rounds, winners can drop out
    /// or straggle past the server deadline, and under-quota rounds refill through
    /// re-auction waves over the standing bid pool.
    ///
    /// # Errors
    ///
    /// Propagates auction and training failures.
    pub fn run_round(&mut self) -> Result<ClusterRound, MecError> {
        match self.config.dynamics {
            Some(dynamics) => self.run_dynamic_round(dynamics),
            None => self.run_static_round(),
        }
    }

    /// Stage 1–2 of any round: winner determination over the `eligible` node indices — an
    /// FMore auction over their capacity-capped equilibrium bids (keeping the ranked
    /// population as the round's standing pool) or a uniform RandFL draw. Shared by the
    /// static and dynamic loops so their selection semantics can never drift apart.
    fn select_winners(&mut self, eligible: &[usize]) -> Result<AuctionStage, MecError> {
        let maxima = self.config.resources.maxima();
        let quota = self.config.winners_per_round.min(eligible.len());
        if quota == 0 {
            return Ok(AuctionStage::default());
        }
        match self.strategy {
            ClusterStrategy::FMore => {
                // Bid collection: one capacity-capped equilibrium bid per eligible node,
                // then the shared batched auction stage — the same pipeline the trainer
                // runs, with the cluster's own award-to-winner mapping plugged in.
                let solver = self
                    .solver
                    .as_ref()
                    .expect("FMore cluster always has a solver");
                let auction = self
                    .auction
                    .as_ref()
                    .expect("FMore cluster always has an auction");
                let mut bids = Vec::with_capacity(eligible.len());
                for &idx in eligible {
                    let node = &self.nodes[idx];
                    let capacity = node.quality(&maxima);
                    bids.push(solver.capped_bid(node.id(), node.theta(), capacity.as_slice())?);
                }
                let nodes = &self.nodes;
                let clients = self.trainer.clients();
                let stage =
                    engine::auction_select_standing(auction, bids, &mut self.rng, |award| {
                        winner_from_award(
                            nodes,
                            clients,
                            maxima.data_size,
                            award.node,
                            award.score,
                            award.payment,
                        )
                    })?;
                Ok(stage)
            }
            ClusterStrategy::RandFL => {
                let picked = sample_indices(eligible.len(), quota, &mut self.rng);
                let winners: Vec<WinnerInfo> = picked
                    .into_iter()
                    .map(|i| {
                        winner_from_award(
                            &self.nodes,
                            self.trainer.clients(),
                            maxima.data_size,
                            NodeId(eligible[i] as u64),
                            0.0,
                            0.0,
                        )
                    })
                    .collect();
                Ok(AuctionStage {
                    winners,
                    ..AuctionStage::default()
                })
            }
        }
    }

    /// The static round loop: every selected winner finishes and aggregates.
    fn run_static_round(&mut self) -> Result<ClusterRound, MecError> {
        for node in &mut self.nodes {
            node.refresh();
        }
        self.trainer.refresh_clients();

        let all_nodes: Vec<usize> = (0..self.nodes.len()).collect();
        let AuctionStage {
            winners,
            all_scores,
            ..
        } = self.select_winners(&all_nodes)?;

        // Wall-clock accounting: the declared data size of each winner trains on its node.
        let participants: Vec<(crate::node::ResourceProfile, f64)> = winners
            .iter()
            .map(|w| {
                let node = &self.nodes[w.client];
                (node.current(), node.current().data_size)
            })
            .collect();
        let round_secs = self
            .config
            .time_model
            .round_secs(&participants, self.config.fl.local_epochs);
        self.elapsed_secs += round_secs;

        self.ledger
            .record_round(winners.iter().map(|w| (w.node, w.payment)));

        let learning = self.trainer.run_round_with(winners, all_scores)?;
        Ok(ClusterRound {
            learning,
            round_secs,
            cumulative_secs: self.elapsed_secs,
        })
    }

    /// The churn-capable round loop (see [`crate::dynamics`] for the semantics):
    ///
    /// 1. membership churn (departures/arrivals), then resource refresh and bid collection
    ///    from the **present** nodes only;
    /// 2. winner determination (auction or random) with the ranked population kept as the
    ///    round's standing bid pool;
    /// 3. per-winner fate draws (dropout, straggler, resource jitter) and the deadline gate
    ///    of [`fmore_fl::engine::apply_deadline`];
    /// 4. re-auction waves from the standing pool while the surviving set is under quota;
    /// 5. training and aggregation of the survivors, with the full [`RoundOutcome`]
    ///    accounting attached.
    ///
    /// Every draw happens on the control thread in node/slot order, so the result is
    /// bit-identical across execution engines and pool sizes.
    fn run_dynamic_round(&mut self, dynamics: DynamicsConfig) -> Result<ClusterRound, MecError> {
        for node in &mut self.nodes {
            node.refresh();
        }
        self.trainer.refresh_clients();
        let churn = self
            .churn
            .as_mut()
            .expect("dynamics always come with churn state");
        churn.begin_round(&dynamics.churn);
        let present = churn.present_indices();

        let maxima = self.config.resources.maxima();
        let quota = self.config.winners_per_round.min(present.len());
        let mut outcome = RoundOutcome::default();
        let mut round_secs = 0.0;

        // Stage 1-2: selection over the present population, keeping the ranked pool.
        let AuctionStage {
            winners: mut wave_winners,
            all_scores,
            standing,
        } = self.select_winners(&present)?;

        // Stages 3-4: fate draws, deadline gate, re-auction waves.
        let mut assigned: Vec<NodeId> = wave_winners.iter().map(|w| w.node).collect();
        let mut survivors: Vec<WinnerInfo> = Vec::new();
        while !wave_winners.is_empty() {
            outcome.selected += wave_winners.len();
            let churn = self
                .churn
                .as_mut()
                .expect("dynamics always come with churn state");
            let timings: Vec<ParticipantTiming> = wave_winners
                .iter()
                .enumerate()
                .map(|(slot, w)| {
                    let fate = churn.draw_fate(&dynamics.churn);
                    let node = &self.nodes[w.client];
                    let mut profile = node.current();
                    profile.cpu_cores = (profile.cpu_cores * fate.resource_factor).max(0.25);
                    profile.bandwidth_mbps *= fate.resource_factor;
                    let mut secs = self.config.time_model.node_round_secs(
                        &profile,
                        node.current().data_size,
                        self.config.fl.local_epochs,
                    );
                    if fate.straggler {
                        outcome.stragglers += 1;
                        secs *= dynamics.churn.straggler_slowdown;
                    }
                    if fate.dropped_out {
                        churn.mark_departed(w.client);
                    }
                    ParticipantTiming {
                        slot,
                        completion_secs: if fate.dropped_out {
                            f64::INFINITY
                        } else {
                            secs
                        },
                        straggler: fate.straggler,
                        dropped_out: fate.dropped_out,
                    }
                })
                .collect();

            let verdict = apply_deadline(&timings, dynamics.deadline_secs);
            round_secs += verdict.wave_secs;
            outcome.dropouts += verdict.dropouts.len();
            outcome.deadline_misses += verdict.missed.len();
            // Late deliveries are paid for discarded work; dropouts forfeit payment.
            for &slot in &verdict.missed {
                outcome.wasted_payment += wave_winners[slot].payment;
            }
            self.ledger
                .record_round(
                    verdict
                        .missed
                        .iter()
                        .chain(verdict.survivors.iter())
                        .map(|&slot| {
                            let w = &wave_winners[slot];
                            (w.node, w.payment)
                        }),
                );
            survivors.extend(verdict.survivors.iter().map(|&s| wave_winners[s].clone()));

            if survivors.len() >= quota || outcome.reauction_waves >= dynamics.max_reauction_waves {
                break;
            }
            let need = quota - survivors.len();
            let replacements: Vec<WinnerInfo> = match self.strategy {
                ClusterStrategy::FMore => {
                    let auction = self
                        .auction
                        .as_ref()
                        .expect("FMore cluster always has an auction");
                    let awards = auction.reauction(&standing, &assigned, need, &mut self.rng);
                    let nodes = &self.nodes;
                    let clients = self.trainer.clients();
                    awards
                        .iter()
                        .map(|award| {
                            winner_from_award(
                                nodes,
                                clients,
                                maxima.data_size,
                                award.node,
                                award.score,
                                award.payment,
                            )
                        })
                        .collect()
                }
                ClusterStrategy::RandFL => {
                    let churn = self
                        .churn
                        .as_ref()
                        .expect("dynamics always come with churn state");
                    let candidates: Vec<usize> = churn
                        .present_indices()
                        .into_iter()
                        .filter(|&i| !assigned.contains(&NodeId(i as u64)))
                        .collect();
                    let picked = sample_indices(candidates.len(), need, &mut self.rng);
                    picked
                        .into_iter()
                        .map(|i| {
                            winner_from_award(
                                &self.nodes,
                                self.trainer.clients(),
                                maxima.data_size,
                                NodeId(candidates[i] as u64),
                                0.0,
                                0.0,
                            )
                        })
                        .collect()
                }
            };
            if replacements.is_empty() {
                break;
            }
            outcome.reauction_waves += 1;
            outcome.replacements += replacements.len();
            assigned.extend(replacements.iter().map(|w| w.node));
            wave_winners = replacements;
        }
        outcome.completed = survivors.len();

        round_secs += self.config.time_model.aggregation_overhead_secs;
        self.elapsed_secs += round_secs;

        // Stage 5: the surviving updates train and aggregate.
        let learning = self
            .trainer
            .run_round_with_outcome(survivors, all_scores, outcome)?;
        Ok(ClusterRound {
            learning,
            round_secs,
            cumulative_secs: self.elapsed_secs,
        })
    }
}

/// Maps an auction award (or a random pick) onto the federated trainer's client list: the
/// node trains on a fraction of its data shard proportional to the data resource it offered
/// this round.
fn winner_from_award(
    nodes: &[MecNode],
    clients: &[fmore_fl::EdgeClient],
    max_data_size: f64,
    node_id: NodeId,
    score: f64,
    payment: f64,
) -> WinnerInfo {
    let idx = node_id.0 as usize;
    let node = &nodes[idx];
    let client = &clients[idx];
    let fraction = (node.current().data_size / max_data_size).clamp(0.05, 1.0);
    let data_size = ((client.data_size() as f64) * fraction).round().max(1.0) as usize;
    WinnerInfo {
        client: idx,
        node: node_id,
        data_size: data_size.min(client.data_size().max(1)),
        categories: client.categories(),
        score,
        payment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_catches_mistakes() {
        assert!(ClusterConfig::paper_cluster().validate().is_ok());
        assert!(ClusterConfig::fast_test().validate().is_ok());

        let mut c = ClusterConfig::fast_test();
        c.nodes = 0;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::fast_test();
        c.winners_per_round = 100;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::fast_test();
        c.fl.clients = 3;
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::fast_test();
        c.scoring_weights = vec![0.5, 0.5];
        assert!(c.validate().is_err());

        let mut c = ClusterConfig::fast_test();
        c.resources.cpu_cores = (0.0, 4.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn paper_cluster_matches_section_v_c() {
        let c = ClusterConfig::paper_cluster();
        assert_eq!(c.nodes, 31);
        assert_eq!(c.scoring_weights, vec![0.4, 0.3, 0.3]);
        assert_eq!(c.fl.task, TaskKind::Cifar10);
        assert_eq!(c.resources.data_size, (2000.0, 10_000.0));
    }

    #[test]
    fn fmore_cluster_round_selects_pays_and_times() {
        let mut cluster =
            MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::FMore, 1).unwrap();
        let round = cluster.run_round().unwrap();
        assert_eq!(round.learning.winners.len(), 3);
        assert!(round.learning.winners.iter().all(|w| w.payment > 0.0));
        assert_eq!(round.learning.all_scores.len(), 8);
        assert!(round.round_secs > 0.0);
        assert_eq!(round.cumulative_secs, round.round_secs);
        assert_eq!(cluster.ledger().distinct_winners(), 3);
        assert!(format!("{cluster:?}").contains("FMore"));
    }

    #[test]
    fn randfl_cluster_round_has_no_payments() {
        let mut cluster =
            MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::RandFL, 2).unwrap();
        let round = cluster.run_round().unwrap();
        assert_eq!(round.learning.winners.len(), 3);
        assert!(round.learning.winners.iter().all(|w| w.payment == 0.0));
        assert!(round.learning.all_scores.is_empty());
        assert_eq!(cluster.ledger().total(), 0.0);
        assert_eq!(cluster.strategy(), ClusterStrategy::RandFL);
    }

    #[test]
    fn history_accumulates_time_and_accuracy() {
        let mut cluster =
            MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::FMore, 3).unwrap();
        let history = cluster.run(3).unwrap();
        assert_eq!(history.rounds.len(), 3);
        let times = history.cumulative_time_series();
        assert!(
            times.windows(2).all(|w| w[1] > w[0]),
            "cumulative time must increase"
        );
        assert_eq!(history.total_time_secs(), *times.last().unwrap());
        assert_eq!(history.accuracy_series().len(), 3);
        assert_eq!(history.loss_series().len(), 3);
        assert!(history.final_accuracy() >= 0.0);
        assert_eq!(cluster.elapsed_secs(), history.total_time_secs());
        // Time-to-accuracy of an unreachable target is None.
        assert!(history.time_to_accuracy(2.0).is_none());
        assert_eq!(
            history.time_to_accuracy(0.0),
            Some(history.rounds[0].cumulative_secs)
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            let mut c =
                MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::FMore, seed).unwrap();
            c.run(2).unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn fmore_winners_have_top_scores() {
        let mut cluster =
            MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::FMore, 4).unwrap();
        let round = cluster.run_round().unwrap();
        let min_winner = round
            .learning
            .winners
            .iter()
            .map(|w| w.score)
            .fold(f64::INFINITY, f64::min);
        let beaten = round
            .learning
            .all_scores
            .iter()
            .filter(|&&s| s > min_winner + 1e-9)
            .count();
        assert!(beaten < round.learning.winners.len());
    }

    #[test]
    fn strategy_names() {
        assert_eq!(ClusterStrategy::FMore.name(), "FMore");
        assert_eq!(ClusterStrategy::RandFL.name(), "RandFL");
    }

    use crate::dynamics::ChurnModel;

    #[test]
    fn stable_dynamics_with_generous_deadline_matches_static_run() {
        // The dynamic loop with a zero-probability churn model and an unmissable deadline is
        // the static loop: same auction draws, same winners, same times, same history.
        for strategy in [ClusterStrategy::FMore, ClusterStrategy::RandFL] {
            let static_run = {
                let mut c = MecCluster::new(ClusterConfig::fast_test(), strategy, 7).unwrap();
                c.run(3).unwrap()
            };
            let dynamic_run = {
                let config = ClusterConfig::fast_test()
                    .with_dynamics(DynamicsConfig::new(ChurnModel::stable()).with_deadline(1e9));
                let mut c = MecCluster::new(config, strategy, 7).unwrap();
                c.run(3).unwrap()
            };
            assert_eq!(
                static_run,
                dynamic_run,
                "{}: stable dynamics must reproduce the static history",
                strategy.name()
            );
        }
    }

    #[test]
    fn certain_dropouts_forfeit_payment_and_empty_the_round() {
        let config = ClusterConfig::fast_test().with_dynamics(
            DynamicsConfig::new(ChurnModel::stable().with_dropout(1.0))
                .with_deadline(1e9)
                .with_reauction_waves(2),
        );
        let mut cluster = MecCluster::new(config, ClusterStrategy::FMore, 5).unwrap();
        let round = cluster.run_round().unwrap();
        let outcome = &round.learning.outcome;
        assert_eq!(outcome.completed, 0);
        assert_eq!(outcome.dropouts, outcome.selected);
        assert!(outcome.selected >= 3, "re-auction waves kept recruiting");
        assert!(outcome.reauction_waves >= 1);
        assert_eq!(outcome.replacements, outcome.selected - 3);
        // Dropouts forfeit payment: nothing disbursed, nothing wasted.
        assert_eq!(outcome.wasted_payment, 0.0);
        assert_eq!(cluster.ledger().total(), 0.0);
        assert!(round.learning.winners.is_empty());
        // Each failed wave costs the full deadline window.
        assert!(round.round_secs >= 1e9);
    }

    #[test]
    fn certain_stragglers_missing_the_deadline_waste_their_payments() {
        let config = ClusterConfig::fast_test().with_dynamics(
            DynamicsConfig::new(ChurnModel::stable().with_stragglers(1.0, 1e9))
                .with_deadline(30.0)
                .with_reauction_waves(1),
        );
        let mut cluster = MecCluster::new(config, ClusterStrategy::FMore, 5).unwrap();
        let round = cluster.run_round().unwrap();
        let outcome = &round.learning.outcome;
        assert_eq!(outcome.completed, 0);
        assert_eq!(outcome.stragglers, outcome.selected);
        assert_eq!(outcome.deadline_misses, outcome.selected);
        // Late work is paid for and wasted — the ledger and the waste account agree.
        assert!(outcome.wasted_payment > 0.0);
        assert!((cluster.ledger().total() - outcome.wasted_payment).abs() < 1e-9);
        assert_eq!(round.learning.winners.len(), 0);
    }

    #[test]
    fn dynamic_histories_expose_churn_accounting() {
        let config = ClusterConfig::fast_test().with_dynamics(
            DynamicsConfig::new(ChurnModel::edge_default().with_dropout(0.5)).with_deadline(120.0),
        );
        let mut cluster = MecCluster::new(config, ClusterStrategy::FMore, 9).unwrap();
        let history = cluster.run(4).unwrap();
        assert_eq!(history.rounds.len(), 4);
        assert!(
            history.total_dropouts() > 0,
            "dropout rate 0.5 over 4 rounds"
        );
        assert!(history.mean_completion_rate() < 1.0);
        assert!(history.mean_completion_rate() >= 0.0);
        let totals = [
            history.total_stragglers(),
            history.total_deadline_misses(),
            history.total_reauction_waves(),
            history.total_replacements(),
        ];
        assert!(totals.iter().all(|&t| t < 1000));
        assert!(history.total_wasted_payment() >= 0.0);
        assert!(cluster.churn().is_some());
        // Static clusters report trivial accounting.
        let mut static_cluster =
            MecCluster::new(ClusterConfig::fast_test(), ClusterStrategy::FMore, 9).unwrap();
        let static_history = static_cluster.run(2).unwrap();
        assert_eq!(static_history.total_dropouts(), 0);
        assert_eq!(static_history.mean_completion_rate(), 1.0);
        assert!(static_cluster.churn().is_none());
    }

    #[test]
    fn dynamic_runs_are_deterministic_per_seed() {
        let run = |seed| {
            let config = ClusterConfig::fast_test()
                .with_dynamics(DynamicsConfig::new(ChurnModel::edge_default()).with_deadline(90.0));
            let mut c = MecCluster::new(config, ClusterStrategy::FMore, seed).unwrap();
            c.run(3).unwrap()
        };
        assert_eq!(run(21), run(21));
        assert_ne!(run(21), run(22));
    }

    #[test]
    fn invalid_dynamics_are_rejected_at_construction() {
        let config = ClusterConfig::fast_test()
            .with_dynamics(DynamicsConfig::new(ChurnModel::stable()).with_deadline(-1.0));
        assert!(MecCluster::new(config, ClusterStrategy::FMore, 1).is_err());
        let mut bad_churn = ChurnModel::stable();
        bad_churn.dropout_prob = 2.0;
        let config = ClusterConfig::fast_test().with_dynamics(DynamicsConfig::new(bad_churn));
        assert!(config.validate().is_err());
    }
}
