//! Wall-clock time model for the simulated cluster.
//!
//! Figures 12–13 of the paper report training *time*, not rounds. Those numbers came from a
//! physical cluster; here each round's duration is derived analytically from the selected
//! nodes' resources:
//!
//! * **computation time** = `data_size · local_epochs · flops_per_sample / (cpu_cores ·
//!   flops_per_core)`,
//! * **communication time** = `2 · model_bits / bandwidth` (download of the global model and
//!   upload of the update),
//! * **round time** = the slowest winner (synchronous aggregation) plus a fixed aggregation
//!   overhead at the server.
//!
//! The default constants are calibrated to the paper's hardware class (Intel i7, 1 Gbps
//! shared Ethernet, CIFAR-scale CNN) so that 20 rounds land in the same order of magnitude as
//! the ~1100–1800 s the paper reports; the *relative* behaviour (FMore finishing well before
//! RandFL because it picks better-provisioned nodes) is what the reproduction relies on.

use crate::node::ResourceProfile;

/// Analytic computation/communication time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeModel {
    /// Training cost per sample per epoch, in floating-point operations.
    pub flops_per_sample: f64,
    /// Sustained throughput of one CPU core, in FLOP/s.
    pub flops_per_core: f64,
    /// Size of the exchanged model in bits.
    pub model_bits: f64,
    /// Fixed per-round aggregation overhead at the server, in seconds.
    pub aggregation_overhead_secs: f64,
}

impl TimeModel {
    /// Constants calibrated to the paper's cluster (i7 CPUs, CIFAR-scale CNN, 1 Gbps LAN).
    pub fn paper_cluster() -> Self {
        Self {
            flops_per_sample: 2.0e7,
            flops_per_core: 4.0e9,
            model_bits: 3.2e7,
            aggregation_overhead_secs: 1.0,
        }
    }

    /// Local computation time of one node training `data_size` samples for `epochs` epochs.
    pub fn computation_secs(&self, node: &ResourceProfile, data_size: f64, epochs: usize) -> f64 {
        let cores = node.cpu_cores.max(1.0);
        data_size.max(0.0) * epochs.max(1) as f64 * self.flops_per_sample
            / (cores * self.flops_per_core)
    }

    /// Communication time of one node: model download plus update upload.
    pub fn communication_secs(&self, node: &ResourceProfile) -> f64 {
        let bandwidth_bits_per_sec = (node.bandwidth_mbps.max(1e-6)) * 1e6;
        2.0 * self.model_bits / bandwidth_bits_per_sec
    }

    /// Total time one node needs for a round.
    pub fn node_round_secs(&self, node: &ResourceProfile, data_size: f64, epochs: usize) -> f64 {
        self.computation_secs(node, data_size, epochs) + self.communication_secs(node)
    }

    /// Synchronous-round duration: the slowest participating node plus the aggregation
    /// overhead. Returns just the overhead if no nodes participate.
    pub fn round_secs(&self, participants: &[(ResourceProfile, f64)], epochs: usize) -> f64 {
        let slowest = participants
            .iter()
            .map(|(profile, data)| self.node_round_secs(profile, *data, epochs))
            .fold(0.0, f64::max);
        slowest + self.aggregation_overhead_secs
    }
}

impl Default for TimeModel {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(cores: f64, bw: f64) -> ResourceProfile {
        ResourceProfile {
            cpu_cores: cores,
            bandwidth_mbps: bw,
            data_size: 5000.0,
        }
    }

    #[test]
    fn computation_scales_with_data_and_inverse_cores() {
        let m = TimeModel::paper_cluster();
        let slow = m.computation_secs(&profile(1.0, 1000.0), 4000.0, 1);
        let fast = m.computation_secs(&profile(8.0, 1000.0), 4000.0, 1);
        assert!((slow / fast - 8.0).abs() < 1e-9);
        let doubled = m.computation_secs(&profile(1.0, 1000.0), 8000.0, 1);
        assert!((doubled / slow - 2.0).abs() < 1e-9);
        let two_epochs = m.computation_secs(&profile(1.0, 1000.0), 4000.0, 2);
        assert!((two_epochs / slow - 2.0).abs() < 1e-9);
    }

    #[test]
    fn communication_scales_with_inverse_bandwidth() {
        let m = TimeModel::paper_cluster();
        let slow = m.communication_secs(&profile(4.0, 100.0));
        let fast = m.communication_secs(&profile(4.0, 1000.0));
        assert!((slow / fast - 10.0).abs() < 1e-9);
    }

    #[test]
    fn round_time_is_the_slowest_participant_plus_overhead() {
        let m = TimeModel::paper_cluster();
        let fast = (profile(8.0, 1000.0), 2000.0);
        let slow = (profile(1.0, 100.0), 10_000.0);
        let round = m.round_secs(&[fast, slow], 1);
        let slow_alone = m.node_round_secs(&slow.0, slow.1, 1);
        assert!((round - slow_alone - m.aggregation_overhead_secs).abs() < 1e-9);
        // No participants: just the overhead.
        assert_eq!(m.round_secs(&[], 1), m.aggregation_overhead_secs);
    }

    #[test]
    fn calibration_is_in_the_papers_order_of_magnitude() {
        // A mid-range node (4 cores, 500 Mbps, 6000 samples) should take tens of seconds per
        // round, so 20 rounds land near the paper's ~1000-2000 s.
        let m = TimeModel::paper_cluster();
        let t = m.node_round_secs(&profile(4.0, 500.0), 6000.0, 1);
        assert!(
            (3.0..120.0).contains(&t),
            "per-round time {t} outside plausible range"
        );
    }

    #[test]
    fn degenerate_inputs_stay_finite() {
        let m = TimeModel::paper_cluster();
        let zero_core = ResourceProfile {
            cpu_cores: 0.0,
            bandwidth_mbps: 0.0,
            data_size: 0.0,
        };
        assert!(m.computation_secs(&zero_core, 1000.0, 1).is_finite());
        assert!(m.communication_secs(&zero_core).is_finite());
        assert!(m.node_round_secs(&zero_core, 0.0, 0).is_finite());
    }
}
