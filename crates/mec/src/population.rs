//! Lazily materialised node populations: million-node MEC fleets whose per-node state is
//! derived, not stored.
//!
//! The cluster simulator of [`crate::cluster`] materialises every [`MecNode`] up front —
//! fine for the paper's 31 machines, impossible for the populations the mechanism is
//! actually pitched at (related work frames winner determination at 10⁵–10⁶ edge bidders).
//! A [`NodePopulation`] stores **only its spec**: node `i`'s private cost parameter θ and
//! its per-round resource provision are pure functions of `(seed, i)` through
//! [`fmore_numerics::rng::derive_stream`], computed in O(1) when asked and never retained.
//! Only auction winners graduate to full state, via [`NodePopulation::materialize`].
//!
//! [`PopulationChurn`] is the membership layer at the same scale: the [`ChurnModel`]
//! probabilities applied over **index sets** — presence is one bit per node in a packed
//! bitmap (125 KB for a million nodes), per-round departure/arrival draws are derived
//! per `(round, node)` hashes (order-independent, shard-independent), and mid-round
//! dropouts clear bits directly. The dense [`crate::dynamics::ChurnState`] keeps its
//! stream-based semantics for the paper-sized cluster; this type is its population-scale
//! sibling.

use crate::dynamics::ChurnModel;
use crate::error::MecError;
use crate::node::{MecNode, ResourceProfile, ResourceRanges};
use fmore_auction::{AuctionError, BidStore, EquilibriumSolver, NodeId};
use fmore_numerics::rng::{derive_seed, derive_stream};
use rand::Rng;

/// Tag streams keeping the θ draw, the per-round resource draws, and the materialised
/// node's private stream decorrelated from one another (the v1 contract), plus the root
/// tag of the v2 fused per-node counter stream.
const THETA_STREAM: u64 = 0x7A11;
const PROFILE_STREAM: u64 = 0x9E0D;
const NODE_STREAM: u64 = 0x1000;
const FUSED_STREAM: u64 = 0xF05E;

/// Which RNG stream contract a [`PopulationSpec`] derives node attributes under.
///
/// * [`SpecVersion::V1`] — the original two-stream derivation: θ and the per-round
///   resource profile each seed a full generator (`derive_stream`) per node. Every
///   committed golden fingerprint and every seeded history replays bit-for-bit under v1,
///   which is why it stays the default.
/// * [`SpecVersion::V2`] — the fused single-stream derivation: node `i` owns **one**
///   counter-based SplitMix64 stream rooted at `w_i = derive_seed(derive_seed(seed,
///   FUSED_STREAM), i)`. θ is read from the stream root itself and the round-`r` profile
///   from the single child word `derive_seed(w_i, r)`, so a whole bid costs two SplitMix64
///   chains instead of two generator constructions plus four generator steps — the fast
///   path of the population-scale bid loop, with its own committed goldens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpecVersion {
    /// Two generator streams per node (θ + profile); bit-compatible with every committed
    /// golden and seeded history.
    #[default]
    V1,
    /// One counter-based SplitMix64 stream per node; the fused fast path of
    /// [`NodePopulation::bid_into`].
    V2,
}

/// The full description of a node population: everything needed to derive any node's
/// attributes on demand. The spec **is** the population — copying it is copying the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationSpec {
    /// Number of edge nodes `N`.
    pub size: usize,
    /// Per-node resource ranges the round-by-round provision is drawn from.
    pub ranges: ResourceRanges,
    /// Support `[θ̲, θ̄]` of the private cost parameter.
    pub theta_range: (f64, f64),
    /// Root seed; node `i` derives every attribute from `(seed, i)`.
    pub seed: u64,
    /// The RNG stream contract node attributes are derived under.
    pub version: SpecVersion,
}

impl PopulationSpec {
    /// A population of `size` nodes on the paper's cluster hardware class with the
    /// scale-experiment θ support `[0.1, 0.9]`, under the golden-compatible
    /// [`SpecVersion::V1`] stream contract.
    pub fn scale_default(size: usize, seed: u64) -> Self {
        Self {
            size,
            ranges: ResourceRanges::paper_cluster(),
            theta_range: (0.1, 0.9),
            seed,
            version: SpecVersion::default(),
        }
    }

    /// The same spec under a different stream contract.
    pub fn with_version(mut self, version: SpecVersion) -> Self {
        self.version = version;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), MecError> {
        if self.size == 0 {
            return Err(MecError::InvalidConfig(
                "population size must be positive".into(),
            ));
        }
        if !self.ranges.is_valid() {
            return Err(MecError::InvalidConfig("invalid resource ranges".into()));
        }
        let (lo, hi) = self.theta_range;
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi) {
            return Err(MecError::InvalidConfig(format!(
                "theta range [{lo}, {hi}] must satisfy 0 < lo < hi < inf"
            )));
        }
        Ok(())
    }
}

/// A population of edge nodes whose attributes are derived on demand from the spec.
///
/// No per-node state exists until a node wins: bid collection asks for
/// [`NodePopulation::theta`] and [`NodePopulation::profile`] (both O(1), allocation-free
/// with [`NodePopulation::quality_into`]), and only winners pay for
/// [`NodePopulation::materialize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePopulation {
    spec: PopulationSpec,
    /// Root of the v2 fused per-node counter stream, `derive_seed(seed, FUSED_STREAM)` —
    /// precomputed so the bid loop pays exactly two SplitMix64 chains per node.
    fused_root: u64,
}

impl NodePopulation {
    /// Builds the population after validating the spec.
    ///
    /// # Errors
    ///
    /// Propagates [`PopulationSpec::validate`] failures.
    pub fn new(spec: PopulationSpec) -> Result<Self, MecError> {
        spec.validate()?;
        Ok(Self {
            spec,
            fused_root: derive_seed(spec.seed, FUSED_STREAM),
        })
    }

    /// The population spec.
    pub fn spec(&self) -> &PopulationSpec {
        &self.spec
    }

    /// Number of nodes `N`.
    pub fn len(&self) -> usize {
        self.spec.size
    }

    /// Whether the population is empty (never true for a validated spec).
    pub fn is_empty(&self) -> bool {
        self.spec.size == 0
    }

    /// The per-dimension resource maxima used for quality normalisation.
    #[inline]
    pub fn maxima(&self) -> ResourceProfile {
        self.spec.ranges.maxima()
    }

    /// Node `i`'s v2 fused stream word — the single SplitMix64 chain everything v2 about
    /// the node hangs off.
    #[inline(always)]
    fn fused_word(&self, i: usize) -> u64 {
        derive_seed(self.fused_root, i as u64)
    }

    /// Node `i`'s private cost parameter θ — constant across rounds, derived O(1).
    #[inline]
    pub fn theta(&self, i: usize) -> f64 {
        let (lo, hi) = self.spec.theta_range;
        match self.spec.version {
            SpecVersion::V1 => {
                let mut rng = derive_stream(derive_seed(self.spec.seed, THETA_STREAM), i as u64);
                rng.gen_range(lo..hi)
            }
            SpecVersion::V2 => theta_from_word(self.fused_word(i), lo, hi),
        }
    }

    /// Node `i`'s resource provision in `round` — a fresh draw per round, derived O(1)
    /// without touching any other node's stream.
    #[inline]
    pub fn profile(&self, i: usize, round: u64) -> ResourceProfile {
        match self.spec.version {
            SpecVersion::V1 => {
                let mut rng = derive_stream(
                    derive_seed(self.spec.seed, PROFILE_STREAM ^ round.wrapping_mul(0x9E37)),
                    i as u64,
                );
                self.spec.ranges.draw(&mut rng)
            }
            SpecVersion::V2 => {
                profile_from_hash(&self.spec.ranges, derive_seed(self.fused_word(i), round))
            }
        }
    }

    /// Node `i`'s normalised quality vector in `round`, written into `out` (cleared first,
    /// capacity reused).
    #[inline]
    pub fn quality_into(&self, i: usize, round: u64, out: &mut Vec<f64>) {
        self.profile(i, round).quality_into(&self.maxima(), out);
    }

    /// Derives node `i`'s complete equilibrium bid for `round` in one shot: θ, the round's
    /// resource provision, the normalised capacity (written into `capacity`), and the
    /// tabulated equilibrium bid (clipped quality into `quality`, ask returned). Both
    /// vectors are cleared first and their allocations reused — the population-scale bid
    /// loop calls this once per node with the same two scratch vectors.
    ///
    /// Under [`SpecVersion::V1`] this performs exactly the decomposed
    /// `theta` → `quality_into` → `tabulated_bid_into` sequence, bit-for-bit. Under
    /// [`SpecVersion::V2`] the θ and profile draws share the node's single fused stream
    /// word, so the whole derivation costs two SplitMix64 chains instead of two full
    /// generator constructions — and still agrees bit-for-bit with the decomposed calls
    /// under v2.
    ///
    /// # Errors
    ///
    /// Propagates [`EquilibriumSolver::tabulated_bid_into`] failures (θ outside the
    /// tabulated grid, dimension mismatch).
    #[inline(always)]
    pub fn bid_into(
        &self,
        i: usize,
        round: u64,
        solver: &EquilibriumSolver,
        capacity: &mut Vec<f64>,
        quality: &mut Vec<f64>,
    ) -> Result<f64, AuctionError> {
        match self.spec.version {
            SpecVersion::V1 => {
                let theta = self.theta(i);
                self.quality_into(i, round, capacity);
                solver.tabulated_bid_into(theta, capacity, quality)
            }
            SpecVersion::V2 => {
                let w = self.fused_word(i);
                let (lo, hi) = self.spec.theta_range;
                let theta = theta_from_word(w, lo, hi);
                let profile = profile_from_hash(&self.spec.ranges, derive_seed(w, round));
                profile.quality_into(&self.maxima(), capacity);
                solver.tabulated_bid_into(theta, capacity, quality)
            }
        }
    }

    /// Derives one shard's worth of equilibrium bids — [`NodePopulation::bid_into`] for
    /// every node in `range`, appended to `store` via the trusted fast path (the bids come
    /// straight from the tabulated solver: quality clipped to a validated capacity, finite
    /// ask, so the store's submitter validation is redundant here).
    ///
    /// Shard granularity matters beyond amortising scratch buffers: on x86-64 the whole
    /// loop body — fused derivation, `round`/`floor` in the provision mapping, the
    /// solver's grid interpolation — is compiled once under the runtime AVX gate
    /// ([`fmore_numerics::avx_enabled`]), which turns the baseline target's libm
    /// `round`/`floor` calls into single instructions. Every operation involved is
    /// IEEE-exact (rounding, conversion, min/max, multiply/add in fixed order), so the
    /// accelerated build is **bit-identical** to the scalar fallback — the same discipline
    /// as the scoring kernels, pinned by the scalar-parity suite.
    ///
    /// # Errors
    ///
    /// Propagates the first [`NodePopulation::bid_into`] failure.
    pub fn bid_range_into_store(
        &self,
        range: std::ops::Range<usize>,
        round: u64,
        solver: &EquilibriumSolver,
        store: &mut BidStore,
    ) -> Result<(), AuctionError> {
        #[cfg(target_arch = "x86_64")]
        if fmore_numerics::avx_enabled() {
            // SAFETY: the AVX gate just confirmed the feature at runtime.
            return unsafe { bid_range_avx(self, range, round, solver, store) };
        }
        self.bid_range_core(range, round, solver, store)
    }

    /// The generic loop behind [`NodePopulation::bid_range_into_store`]; `inline(always)`
    /// so the `target_feature` wrapper compiles the whole body (and everything `#[inline]`
    /// beneath it) under the wider instruction set.
    #[inline(always)]
    fn bid_range_core(
        &self,
        range: std::ops::Range<usize>,
        round: u64,
        solver: &EquilibriumSolver,
        store: &mut BidStore,
    ) -> Result<(), AuctionError> {
        match self.spec.version {
            SpecVersion::V1 => {
                let mut capacity = Vec::with_capacity(3);
                let mut quality = Vec::with_capacity(3);
                for i in range {
                    let ask = self.bid_into(i, round, solver, &mut capacity, &mut quality)?;
                    store.push_trusted(NodeId(i as u64), &quality, ask);
                }
            }
            SpecVersion::V2 => {
                // The fused derivation of `bid_into`'s V2 arm, restructured as columnar
                // passes over the shard. Pass A is the pure derivation — fused stream
                // word, θ, per-round profile, normalised capacity — written to per-thread
                // scratch; its loop body is straight-line integer hashing and IEEE-exact
                // float mapping with no branches or calls, which LLVM fully vectorises
                // under the AVX-512 tier (see [`derive_shard_avx512`]). The solver's
                // batched grid lookup then vectorises the per-θ divide and floor, and the
                // final pass walks the precomputed positions through the interpolation,
                // appending straight onto the store's columns. Same helpers, same
                // operation order, so every value is bit-identical to the per-node
                // `bid_into` path (pinned by the property suite).
                let n = range.len();
                SHARD_SCRATCH.with(|cell| {
                    let s = &mut *cell.borrow_mut();
                    s.resize(n);
                    self.derive_shard(
                        range.start,
                        round,
                        &mut s.thetas,
                        &mut s.c0,
                        &mut s.c1,
                        &mut s.c2,
                    );
                    solver.grid_pos_batch(&s.thetas, &mut s.idx, &mut s.frac)?;
                    for j in 0..n {
                        let capacity = [s.c0[j], s.c1[j], s.c2[j]];
                        store.push_trusted_with(NodeId((range.start + j) as u64), |out| {
                            solver.tabulated_bid_append_at(
                                s.idx[j] as usize,
                                s.frac[j],
                                &capacity,
                                out,
                            )
                        })?;
                    }
                    Ok::<(), AuctionError>(())
                })?;
            }
        }
        Ok(())
    }

    /// Pass A of the v2 shard loop: derives θ and the normalised capacity columns for
    /// nodes `start..start + thetas.len()` in `round`. Dispatches to the AVX-512-compiled
    /// twin when the CPU supports it (and [`fmore_numerics::avx512_enabled`] allows it);
    /// otherwise the core compiles under whatever instruction set the caller's own
    /// `target_feature` context provides — the tier-by-tier fallthrough of the SIMD
    /// dispatch discipline.
    fn derive_shard(
        &self,
        start: usize,
        round: u64,
        thetas: &mut [f64],
        c0: &mut [f64],
        c1: &mut [f64],
        c2: &mut [f64],
    ) {
        #[cfg(target_arch = "x86_64")]
        if fmore_numerics::avx512_enabled() {
            // SAFETY: the AVX-512 gate just confirmed the F/DQ/VL subsets at runtime.
            return unsafe { derive_shard_avx512(self, start, round, thetas, c0, c1, c2) };
        }
        self.derive_shard_core(start, round, thetas, c0, c1, c2);
    }

    /// The generic loop behind [`NodePopulation::derive_shard`]; `inline(always)` so the
    /// `target_feature` wrapper compiles the whole body under the wider instruction set.
    /// Every operation is IEEE-exact (integer hashing, `u64 → f64` conversion,
    /// multiply/add in fixed order, [`snap`], min/max), so the vectorised compile is
    /// bit-identical to the scalar one.
    #[inline(always)]
    fn derive_shard_core(
        &self,
        start: usize,
        round: u64,
        thetas: &mut [f64],
        c0: &mut [f64],
        c1: &mut [f64],
        c2: &mut [f64],
    ) {
        let (lo, hi) = self.spec.theta_range;
        let maxima = self.maxima();
        let ranges = &self.spec.ranges;
        for j in 0..thetas.len() {
            let w = self.fused_word(start + j);
            thetas[j] = theta_from_word(w, lo, hi);
            let profile = profile_from_hash(ranges, derive_seed(w, round));
            let cap = profile.to_quality_array(&maxima);
            c0[j] = cap[0];
            c1[j] = cap[1];
            c2[j] = cap[2];
        }
    }

    /// Materialises the full [`MecNode`] for node `i` — what an auction winner graduates
    /// to when it must carry live state (resource refresh stream, training client). The
    /// node's private stream is derived from the same `(seed, i)` root, so materialising
    /// twice yields the identical node.
    pub fn materialize(&self, i: usize) -> MecNode {
        MecNode::new(
            fmore_auction::NodeId(i as u64),
            self.spec.ranges,
            self.theta(i),
            derive_seed(self.spec.seed, NODE_STREAM + i as u64),
        )
    }
}

/// AVX-compiled twin of [`NodePopulation::bid_range_core`] — identical code under
/// `target_feature(enable = "avx")`, bit-identical results (see
/// [`NodePopulation::bid_range_into_store`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn bid_range_avx(
    population: &NodePopulation,
    range: std::ops::Range<usize>,
    round: u64,
    solver: &EquilibriumSolver,
    store: &mut BidStore,
) -> Result<(), AuctionError> {
    population.bid_range_core(range, round, solver, store)
}

/// Per-thread columnar scratch for the v2 shard bid loop: pass-A outputs (θ and the
/// three capacity columns) plus the batched grid positions. Sized once per worker thread
/// and reused every shard, so the steady-state round allocates nothing and never pays
/// the zero-fill of fresh buffers.
#[derive(Default)]
struct ShardScratch {
    thetas: Vec<f64>,
    c0: Vec<f64>,
    c1: Vec<f64>,
    c2: Vec<f64>,
    idx: Vec<f64>,
    frac: Vec<f64>,
}

impl ShardScratch {
    fn resize(&mut self, n: usize) {
        self.thetas.resize(n, 0.0);
        self.c0.resize(n, 0.0);
        self.c1.resize(n, 0.0);
        self.c2.resize(n, 0.0);
        self.idx.resize(n, 0.0);
        self.frac.resize(n, 0.0);
    }
}

std::thread_local! {
    /// See [`ShardScratch`] — one per worker thread, reused across shards and rounds.
    static SHARD_SCRATCH: std::cell::RefCell<ShardScratch> =
        std::cell::RefCell::new(ShardScratch::default());
}

/// AVX-512-compiled twin of [`NodePopulation::derive_shard_core`] — identical code under
/// `target_feature(enable = "avx512f,avx512dq,avx512vl")`, bit-identical results. The F
/// subset supplies the 8-wide f64 lanes, DQ the 64-bit lane multiplies (`vpmullq`) and
/// `u64 → f64` conversions (`vcvtuqq2pd`) the SplitMix64 chains and unit mappings
/// vectorise over, and VL the narrower encodings for the loop remainder.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512dq,avx512vl")]
unsafe fn derive_shard_avx512(
    population: &NodePopulation,
    start: usize,
    round: u64,
    thetas: &mut [f64],
    c0: &mut [f64],
    c1: &mut [f64],
    c2: &mut [f64],
) {
    population.derive_shard_core(start, round, thetas, c0, c1, c2);
}

/// Packed-bitmap membership churn over a [`NodePopulation`]'s index space.
///
/// Presence is one bit per node; the per-round departure/arrival draws are derived from
/// `(seed, round, node)` hashes rather than a sequential stream, so advancing a round is an
/// embarrassingly parallel pass over the bitmap and the result is independent of evaluation
/// order. The `min_present` floor is enforced in node order, as in
/// [`crate::dynamics::ChurnState::begin_round`].
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationChurn {
    model: ChurnModel,
    seed: u64,
    size: usize,
    round: u64,
    /// Presence bitmap, one bit per node index.
    bits: Vec<u64>,
}

/// Maps a 64-bit hash to a unit draw in `[0, 1)` — same construction as the generator's
/// `f64` sampling.
fn unit_from_hash(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// v2 θ draw: maps the node's fused stream word onto `[lo, hi)` with the same
/// exclusive-top clamp the generator's float `gen_range` applies.
#[inline(always)]
fn theta_from_word(w: u64, lo: f64, hi: f64) -> f64 {
    let v = lo + (hi - lo) * unit_from_hash(w);
    if v >= hi {
        (hi - (hi - lo) * f64::EPSILON).max(lo)
    } else {
        v
    }
}

/// Maps a 21-bit field to a unit draw in `[0, 1)` — the v2 per-dimension resolution
/// (three dimensions share one 64-bit word; a 2⁻²¹ step is far below every range's
/// rounding or normalisation granularity).
#[inline(always)]
fn unit21(x: u64) -> f64 {
    (x & 0x1F_FFFF) as f64 * (1.0 / (1u64 << 21) as f64)
}

/// Inclusive-range sample matching `ResourceRanges::draw`'s `gen_range(lo..=hi)`
/// semantics: degenerate ranges collapse to `hi`, and the mapped value is capped at `hi`.
#[inline(always)]
fn inclusive_sample(lo: f64, hi: f64, unit: f64) -> f64 {
    if hi > lo {
        let v = lo + (hi - lo) * unit;
        if v > hi {
            hi
        } else {
            v
        }
    } else {
        hi
    }
}

/// The v2 integer-snapping contract: `(x + 0.5).floor()`. One rounding instruction in
/// both scalar and vector code (`roundsd`/`vrndscalepd` in floor mode) — unlike `round`'s
/// half-away-from-zero, which has no vector encoding and forces a libm call on baseline
/// targets. For the non-negative draws the v2 mapping produces, `x + 0.5` is exact at
/// every halfway case on the resource grids, so the result equals `round` on every
/// representable draw.
#[inline(always)]
fn snap(x: f64) -> f64 {
    (x + 0.5).floor()
}

/// v2 profile draw: splits one per-round hash into three 21-bit unit draws and applies the
/// same per-dimension mapping as `ResourceRanges::draw` (cpu, bandwidth, data in that
/// order), with integer dimensions snapped under the v2 [`snap`] contract.
#[inline(always)]
fn profile_from_hash(ranges: &ResourceRanges, h: u64) -> ResourceProfile {
    ResourceProfile {
        cpu_cores: snap(inclusive_sample(
            ranges.cpu_cores.0,
            ranges.cpu_cores.1,
            unit21(h),
        ))
        .max(1.0),
        bandwidth_mbps: inclusive_sample(
            ranges.bandwidth_mbps.0,
            ranges.bandwidth_mbps.1,
            unit21(h >> 21),
        ),
        data_size: snap(inclusive_sample(
            ranges.data_size.0,
            ranges.data_size.1,
            unit21(h >> 42),
        )),
    }
}

fn churn_hash(seed: u64, round: u64, node: u64, tag: u64) -> u64 {
    derive_seed(
        derive_seed(seed, round.wrapping_mul(2).wrapping_add(tag)),
        node,
    )
}

impl PopulationChurn {
    /// Everyone-present churn state over `size` nodes.
    ///
    /// # Errors
    ///
    /// Propagates [`ChurnModel::validate`] failures.
    pub fn new(size: usize, model: ChurnModel, seed: u64) -> Result<Self, MecError> {
        model.validate()?;
        let words = size.div_ceil(64);
        let mut bits = vec![u64::MAX; words];
        if let Some(last) = bits.last_mut() {
            let tail = size % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        Ok(Self {
            model,
            seed,
            size,
            round: 0,
            bits,
        })
    }

    /// The churn model in force.
    pub fn model(&self) -> &ChurnModel {
        &self.model
    }

    /// Population size `N`.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Whether node `i` is currently present.
    pub fn is_present(&self, i: usize) -> bool {
        i < self.size && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of currently present nodes (a popcount over the bitmap).
    pub fn present_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Marks node `i` absent immediately (a mid-round dropout).
    pub fn mark_departed(&mut self, i: usize) {
        if i < self.size {
            self.bits[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Advances membership by one round: present nodes depart with the model's departure
    /// probability, absent nodes rejoin with its arrival probability — each decided by a
    /// per-`(round, node)` derived hash, so the update is order-independent. Departures
    /// honour the `min_present` floor in node order; if dropouts pushed the population
    /// below the floor, nodes are revived in node order until it holds.
    pub fn advance_round(&mut self) {
        self.round += 1;
        let mut remaining = self.present_count();
        for i in 0..self.size {
            let word = i / 64;
            let mask = 1u64 << (i % 64);
            let present = self.bits[word] & mask != 0;
            if present {
                let u = unit_from_hash(churn_hash(self.seed, self.round, i as u64, 0));
                if u < self.model.departure_prob && remaining > self.model.min_present {
                    self.bits[word] &= !mask;
                    remaining -= 1;
                }
            } else {
                let u = unit_from_hash(churn_hash(self.seed, self.round, i as u64, 1));
                if u < self.model.arrival_prob {
                    self.bits[word] |= mask;
                    remaining += 1;
                }
            }
        }
        for i in 0..self.size {
            if remaining >= self.model.min_present {
                break;
            }
            let word = i / 64;
            let mask = 1u64 << (i % 64);
            if self.bits[word] & mask == 0 {
                self.bits[word] |= mask;
                remaining += 1;
            }
        }
    }

    /// Calls `f` for every present node index in `range`, in index order — the shape bid
    /// collection wants: a shard filler walks its index range and skips absentees without
    /// ever building an index `Vec`.
    pub fn for_each_present<F: FnMut(usize)>(&self, range: std::ops::Range<usize>, mut f: F) {
        let end = range.end.min(self.size);
        for i in range.start..end {
            if self.bits[i / 64] & (1u64 << (i % 64)) != 0 {
                f(i);
            }
        }
    }

    /// Resident bytes of the presence bitmap.
    pub fn resident_bytes(&self) -> usize {
        self.bits.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(size: usize) -> PopulationSpec {
        PopulationSpec::scale_default(size, 42)
    }

    #[test]
    fn spec_validation_catches_mistakes() {
        assert!(spec(100).validate().is_ok());
        assert!(spec(0).validate().is_err());
        let mut bad = spec(10);
        bad.theta_range = (0.5, 0.5);
        assert!(bad.validate().is_err());
        let mut bad = spec(10);
        bad.theta_range = (0.0, 0.9);
        assert!(bad.validate().is_err());
        let mut bad = spec(10);
        bad.ranges.cpu_cores = (0.0, 4.0);
        assert!(NodePopulation::new(bad).is_err());
    }

    #[test]
    fn derived_attributes_are_pure_functions_of_seed_and_index() {
        let pop = NodePopulation::new(spec(1000)).unwrap();
        assert_eq!(pop.len(), 1000);
        assert!(!pop.is_empty());
        for &i in &[0usize, 1, 17, 999] {
            assert_eq!(pop.theta(i), pop.theta(i), "theta must be deterministic");
            assert_eq!(pop.profile(i, 3), pop.profile(i, 3));
            let (lo, hi) = pop.spec().theta_range;
            assert!((lo..hi).contains(&pop.theta(i)));
        }
        // Different nodes and different rounds see different draws.
        assert_ne!(pop.theta(0), pop.theta(1));
        assert_ne!(pop.profile(5, 0), pop.profile(5, 1));
        // A different seed is a different fleet.
        let other = NodePopulation::new(PopulationSpec {
            seed: 43,
            ..*pop.spec()
        })
        .unwrap();
        assert_ne!(pop.theta(0), other.theta(0));
    }

    #[test]
    fn profiles_stay_within_ranges_and_qualities_in_unit_cube() {
        let pop = NodePopulation::new(spec(64)).unwrap();
        let mut q = Vec::new();
        for i in 0..64 {
            let p = pop.profile(i, 7);
            assert!((1.0..=8.0).contains(&p.cpu_cores));
            assert!((100.0..=1000.0).contains(&p.bandwidth_mbps));
            assert!((2000.0..=10_000.0).contains(&p.data_size));
            pop.quality_into(i, 7, &mut q);
            assert_eq!(q.len(), 3);
            assert!(q.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn materialized_nodes_match_their_derived_attributes() {
        let pop = NodePopulation::new(spec(32)).unwrap();
        let node = pop.materialize(9);
        assert_eq!(node.id(), fmore_auction::NodeId(9));
        assert!((node.theta() - pop.theta(9)).abs() < 1e-15);
        assert_eq!(*node.ranges(), pop.spec().ranges);
        // Materialising twice yields the identical node state.
        let again = pop.materialize(9);
        assert_eq!(node.current(), again.current());
    }

    fn tiny_solver(theta_range: (f64, f64)) -> EquilibriumSolver {
        EquilibriumSolver::builder()
            .scoring(fmore_auction::Additive::new(vec![0.4, 0.3, 0.3]).unwrap())
            .cost(fmore_auction::LinearCost::new(vec![0.3, 0.3, 0.4]).unwrap())
            .theta(fmore_numerics::UniformDist::new(theta_range.0, theta_range.1).unwrap())
            .bounds(vec![(0.0, 1.0); 3])
            .population(64)
            .winners(8)
            .grid_size(48)
            .build()
            .unwrap()
    }

    #[test]
    fn v2_attributes_are_deterministic_in_range_and_distinct_from_v1() {
        let v1 = NodePopulation::new(spec(256)).unwrap();
        let v2 = NodePopulation::new(spec(256).with_version(SpecVersion::V2)).unwrap();
        let (lo, hi) = v2.spec().theta_range;
        let mut q = Vec::new();
        for i in 0..256 {
            assert_eq!(v2.theta(i), v2.theta(i));
            assert!((lo..hi).contains(&v2.theta(i)));
            let p = v2.profile(i, 5);
            assert_eq!(p, v2.profile(i, 5));
            assert!((1.0..=8.0).contains(&p.cpu_cores));
            assert!((100.0..=1000.0).contains(&p.bandwidth_mbps));
            assert!((2000.0..=10_000.0).contains(&p.data_size));
            assert_eq!(p.cpu_cores, p.cpu_cores.round());
            assert_eq!(p.data_size, p.data_size.round());
            v2.quality_into(i, 5, &mut q);
            assert!(q.iter().all(|v| (0.0..=1.0).contains(v)));
        }
        // The contracts really are different streams.
        assert!((0..256).any(|i| v1.theta(i) != v2.theta(i)));
        assert!((0..256).any(|i| v1.profile(i, 0) != v2.profile(i, 0)));
        // θ is round-independent while profiles are per-round draws.
        assert_ne!(v2.profile(7, 0), v2.profile(7, 1));
    }

    #[test]
    fn bid_into_matches_decomposed_derivation_under_both_versions() {
        for version in [SpecVersion::V1, SpecVersion::V2] {
            let pop = NodePopulation::new(spec(64).with_version(version)).unwrap();
            let solver = tiny_solver(pop.spec().theta_range);
            let (mut cap, mut qual) = (Vec::new(), Vec::new());
            let (mut cap2, mut qual2) = (Vec::new(), Vec::new());
            for i in (0..64).step_by(7) {
                for round in [0u64, 3] {
                    let ask = pop
                        .bid_into(i, round, &solver, &mut cap, &mut qual)
                        .unwrap();
                    let theta = pop.theta(i);
                    pop.quality_into(i, round, &mut cap2);
                    let ask2 = solver.tabulated_bid_into(theta, &cap2, &mut qual2).unwrap();
                    assert_eq!(ask.to_bits(), ask2.to_bits(), "{version:?} node {i}");
                    assert_eq!(cap, cap2);
                    assert_eq!(qual, qual2);
                }
            }
        }
    }

    #[test]
    fn materialized_nodes_follow_the_spec_version() {
        let pop = NodePopulation::new(spec(32).with_version(SpecVersion::V2)).unwrap();
        let node = pop.materialize(9);
        assert_eq!(node.theta().to_bits(), pop.theta(9).to_bits());
    }

    #[test]
    fn churn_bitmap_tracks_presence_and_floor() {
        let mut churn = PopulationChurn::new(130, ChurnModel::stable(), 1).unwrap();
        assert_eq!(churn.len(), 130);
        assert!(!churn.is_empty());
        assert_eq!(churn.present_count(), 130);
        assert!(churn.is_present(129));
        assert!(!churn.is_present(130), "out of range is absent");
        churn.mark_departed(129);
        assert!(!churn.is_present(129));
        assert_eq!(churn.present_count(), 129);
        // Stable model: nothing changes round over round.
        churn.advance_round();
        assert_eq!(churn.present_count(), 129);
        assert_eq!(churn.resident_bytes(), 3 * 8);
    }

    #[test]
    fn certain_departures_respect_the_floor_and_revival() {
        let mut model = ChurnModel::stable().with_membership(1.0, 0.0);
        model.min_present = 5;
        let mut churn = PopulationChurn::new(64, model, 3).unwrap();
        churn.advance_round();
        assert_eq!(churn.present_count(), 5, "floor holds under certain exodus");
        // Dropouts below the floor are revived at the next round boundary.
        for i in 0..64 {
            churn.mark_departed(i);
        }
        assert_eq!(churn.present_count(), 0);
        churn.advance_round();
        assert_eq!(churn.present_count(), 5);
    }

    #[test]
    fn churn_draws_are_deterministic_and_order_independent() {
        let model = ChurnModel::edge_default();
        let run = |rounds: usize| {
            let mut churn = PopulationChurn::new(256, model, 11).unwrap();
            for _ in 0..rounds {
                churn.advance_round();
            }
            (0..256).map(|i| churn.is_present(i)).collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(1), run(4));
        // The churn actually churns.
        let present = run(1).iter().filter(|&&p| p).count();
        assert!(present < 256);
        assert!(present >= model.min_present);
    }

    #[test]
    fn for_each_present_walks_index_ranges_in_order() {
        let mut churn = PopulationChurn::new(20, ChurnModel::stable(), 5).unwrap();
        churn.mark_departed(3);
        churn.mark_departed(7);
        let mut seen = Vec::new();
        churn.for_each_present(0..10, |i| seen.push(i));
        assert_eq!(seen, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        // Ranges beyond the population are clamped.
        let mut tail = Vec::new();
        churn.for_each_present(18..99, |i| tail.push(i));
        assert_eq!(tail, vec![18, 19]);
    }

    #[test]
    fn invalid_churn_models_are_rejected() {
        let mut bad = ChurnModel::stable();
        bad.dropout_prob = 2.0;
        assert!(PopulationChurn::new(10, bad, 1).is_err());
    }
}
