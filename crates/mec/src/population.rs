//! Lazily materialised node populations: million-node MEC fleets whose per-node state is
//! derived, not stored.
//!
//! The cluster simulator of [`crate::cluster`] materialises every [`MecNode`] up front —
//! fine for the paper's 31 machines, impossible for the populations the mechanism is
//! actually pitched at (related work frames winner determination at 10⁵–10⁶ edge bidders).
//! A [`NodePopulation`] stores **only its spec**: node `i`'s private cost parameter θ and
//! its per-round resource provision are pure functions of `(seed, i)` through
//! [`fmore_numerics::rng::derive_stream`], computed in O(1) when asked and never retained.
//! Only auction winners graduate to full state, via [`NodePopulation::materialize`].
//!
//! [`PopulationChurn`] is the membership layer at the same scale: the [`ChurnModel`]
//! probabilities applied over **index sets** — presence is one bit per node in a packed
//! bitmap (125 KB for a million nodes), per-round departure/arrival draws are derived
//! per `(round, node)` hashes (order-independent, shard-independent), and mid-round
//! dropouts clear bits directly. The dense [`crate::dynamics::ChurnState`] keeps its
//! stream-based semantics for the paper-sized cluster; this type is its population-scale
//! sibling.

use crate::dynamics::ChurnModel;
use crate::error::MecError;
use crate::node::{MecNode, ResourceProfile, ResourceRanges};
use fmore_numerics::rng::{derive_seed, derive_stream};
use rand::Rng;

/// Tag streams keeping the θ draw, the per-round resource draws, and the materialised
/// node's private stream decorrelated from one another.
const THETA_STREAM: u64 = 0x7A11;
const PROFILE_STREAM: u64 = 0x9E0D;
const NODE_STREAM: u64 = 0x1000;

/// The full description of a node population: everything needed to derive any node's
/// attributes on demand. The spec **is** the population — copying it is copying the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationSpec {
    /// Number of edge nodes `N`.
    pub size: usize,
    /// Per-node resource ranges the round-by-round provision is drawn from.
    pub ranges: ResourceRanges,
    /// Support `[θ̲, θ̄]` of the private cost parameter.
    pub theta_range: (f64, f64),
    /// Root seed; node `i` derives every attribute from `(seed, i)`.
    pub seed: u64,
}

impl PopulationSpec {
    /// A population of `size` nodes on the paper's cluster hardware class with the
    /// scale-experiment θ support `[0.1, 0.9]`.
    pub fn scale_default(size: usize, seed: u64) -> Self {
        Self {
            size,
            ranges: ResourceRanges::paper_cluster(),
            theta_range: (0.1, 0.9),
            seed,
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`MecError::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), MecError> {
        if self.size == 0 {
            return Err(MecError::InvalidConfig(
                "population size must be positive".into(),
            ));
        }
        if !self.ranges.is_valid() {
            return Err(MecError::InvalidConfig("invalid resource ranges".into()));
        }
        let (lo, hi) = self.theta_range;
        if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi) {
            return Err(MecError::InvalidConfig(format!(
                "theta range [{lo}, {hi}] must satisfy 0 < lo < hi < inf"
            )));
        }
        Ok(())
    }
}

/// A population of edge nodes whose attributes are derived on demand from the spec.
///
/// No per-node state exists until a node wins: bid collection asks for
/// [`NodePopulation::theta`] and [`NodePopulation::profile`] (both O(1), allocation-free
/// with [`NodePopulation::quality_into`]), and only winners pay for
/// [`NodePopulation::materialize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePopulation {
    spec: PopulationSpec,
}

impl NodePopulation {
    /// Builds the population after validating the spec.
    ///
    /// # Errors
    ///
    /// Propagates [`PopulationSpec::validate`] failures.
    pub fn new(spec: PopulationSpec) -> Result<Self, MecError> {
        spec.validate()?;
        Ok(Self { spec })
    }

    /// The population spec.
    pub fn spec(&self) -> &PopulationSpec {
        &self.spec
    }

    /// Number of nodes `N`.
    pub fn len(&self) -> usize {
        self.spec.size
    }

    /// Whether the population is empty (never true for a validated spec).
    pub fn is_empty(&self) -> bool {
        self.spec.size == 0
    }

    /// The per-dimension resource maxima used for quality normalisation.
    pub fn maxima(&self) -> ResourceProfile {
        self.spec.ranges.maxima()
    }

    /// Node `i`'s private cost parameter θ — constant across rounds, derived O(1).
    pub fn theta(&self, i: usize) -> f64 {
        let mut rng = derive_stream(derive_seed(self.spec.seed, THETA_STREAM), i as u64);
        let (lo, hi) = self.spec.theta_range;
        rng.gen_range(lo..hi)
    }

    /// Node `i`'s resource provision in `round` — a fresh draw per round, derived O(1)
    /// without touching any other node's stream.
    pub fn profile(&self, i: usize, round: u64) -> ResourceProfile {
        let mut rng = derive_stream(
            derive_seed(self.spec.seed, PROFILE_STREAM ^ round.wrapping_mul(0x9E37)),
            i as u64,
        );
        self.spec.ranges.draw(&mut rng)
    }

    /// Node `i`'s normalised quality vector in `round`, written into `out` (cleared first,
    /// capacity reused).
    pub fn quality_into(&self, i: usize, round: u64, out: &mut Vec<f64>) {
        self.profile(i, round).quality_into(&self.maxima(), out);
    }

    /// Materialises the full [`MecNode`] for node `i` — what an auction winner graduates
    /// to when it must carry live state (resource refresh stream, training client). The
    /// node's private stream is derived from the same `(seed, i)` root, so materialising
    /// twice yields the identical node.
    pub fn materialize(&self, i: usize) -> MecNode {
        MecNode::new(
            fmore_auction::NodeId(i as u64),
            self.spec.ranges,
            self.theta(i),
            derive_seed(self.spec.seed, NODE_STREAM + i as u64),
        )
    }
}

/// Packed-bitmap membership churn over a [`NodePopulation`]'s index space.
///
/// Presence is one bit per node; the per-round departure/arrival draws are derived from
/// `(seed, round, node)` hashes rather than a sequential stream, so advancing a round is an
/// embarrassingly parallel pass over the bitmap and the result is independent of evaluation
/// order. The `min_present` floor is enforced in node order, as in
/// [`crate::dynamics::ChurnState::begin_round`].
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationChurn {
    model: ChurnModel,
    seed: u64,
    size: usize,
    round: u64,
    /// Presence bitmap, one bit per node index.
    bits: Vec<u64>,
}

/// Maps a 64-bit hash to a unit draw in `[0, 1)` — same construction as the generator's
/// `f64` sampling.
fn unit_from_hash(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn churn_hash(seed: u64, round: u64, node: u64, tag: u64) -> u64 {
    derive_seed(
        derive_seed(seed, round.wrapping_mul(2).wrapping_add(tag)),
        node,
    )
}

impl PopulationChurn {
    /// Everyone-present churn state over `size` nodes.
    ///
    /// # Errors
    ///
    /// Propagates [`ChurnModel::validate`] failures.
    pub fn new(size: usize, model: ChurnModel, seed: u64) -> Result<Self, MecError> {
        model.validate()?;
        let words = size.div_ceil(64);
        let mut bits = vec![u64::MAX; words];
        if let Some(last) = bits.last_mut() {
            let tail = size % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        Ok(Self {
            model,
            seed,
            size,
            round: 0,
            bits,
        })
    }

    /// The churn model in force.
    pub fn model(&self) -> &ChurnModel {
        &self.model
    }

    /// Population size `N`.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Whether node `i` is currently present.
    pub fn is_present(&self, i: usize) -> bool {
        i < self.size && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of currently present nodes (a popcount over the bitmap).
    pub fn present_count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Marks node `i` absent immediately (a mid-round dropout).
    pub fn mark_departed(&mut self, i: usize) {
        if i < self.size {
            self.bits[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Advances membership by one round: present nodes depart with the model's departure
    /// probability, absent nodes rejoin with its arrival probability — each decided by a
    /// per-`(round, node)` derived hash, so the update is order-independent. Departures
    /// honour the `min_present` floor in node order; if dropouts pushed the population
    /// below the floor, nodes are revived in node order until it holds.
    pub fn advance_round(&mut self) {
        self.round += 1;
        let mut remaining = self.present_count();
        for i in 0..self.size {
            let word = i / 64;
            let mask = 1u64 << (i % 64);
            let present = self.bits[word] & mask != 0;
            if present {
                let u = unit_from_hash(churn_hash(self.seed, self.round, i as u64, 0));
                if u < self.model.departure_prob && remaining > self.model.min_present {
                    self.bits[word] &= !mask;
                    remaining -= 1;
                }
            } else {
                let u = unit_from_hash(churn_hash(self.seed, self.round, i as u64, 1));
                if u < self.model.arrival_prob {
                    self.bits[word] |= mask;
                    remaining += 1;
                }
            }
        }
        for i in 0..self.size {
            if remaining >= self.model.min_present {
                break;
            }
            let word = i / 64;
            let mask = 1u64 << (i % 64);
            if self.bits[word] & mask == 0 {
                self.bits[word] |= mask;
                remaining += 1;
            }
        }
    }

    /// Calls `f` for every present node index in `range`, in index order — the shape bid
    /// collection wants: a shard filler walks its index range and skips absentees without
    /// ever building an index `Vec`.
    pub fn for_each_present<F: FnMut(usize)>(&self, range: std::ops::Range<usize>, mut f: F) {
        let end = range.end.min(self.size);
        for i in range.start..end {
            if self.bits[i / 64] & (1u64 << (i % 64)) != 0 {
                f(i);
            }
        }
    }

    /// Resident bytes of the presence bitmap.
    pub fn resident_bytes(&self) -> usize {
        self.bits.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(size: usize) -> PopulationSpec {
        PopulationSpec::scale_default(size, 42)
    }

    #[test]
    fn spec_validation_catches_mistakes() {
        assert!(spec(100).validate().is_ok());
        assert!(spec(0).validate().is_err());
        let mut bad = spec(10);
        bad.theta_range = (0.5, 0.5);
        assert!(bad.validate().is_err());
        let mut bad = spec(10);
        bad.theta_range = (0.0, 0.9);
        assert!(bad.validate().is_err());
        let mut bad = spec(10);
        bad.ranges.cpu_cores = (0.0, 4.0);
        assert!(NodePopulation::new(bad).is_err());
    }

    #[test]
    fn derived_attributes_are_pure_functions_of_seed_and_index() {
        let pop = NodePopulation::new(spec(1000)).unwrap();
        assert_eq!(pop.len(), 1000);
        assert!(!pop.is_empty());
        for &i in &[0usize, 1, 17, 999] {
            assert_eq!(pop.theta(i), pop.theta(i), "theta must be deterministic");
            assert_eq!(pop.profile(i, 3), pop.profile(i, 3));
            let (lo, hi) = pop.spec().theta_range;
            assert!((lo..hi).contains(&pop.theta(i)));
        }
        // Different nodes and different rounds see different draws.
        assert_ne!(pop.theta(0), pop.theta(1));
        assert_ne!(pop.profile(5, 0), pop.profile(5, 1));
        // A different seed is a different fleet.
        let other = NodePopulation::new(PopulationSpec {
            seed: 43,
            ..*pop.spec()
        })
        .unwrap();
        assert_ne!(pop.theta(0), other.theta(0));
    }

    #[test]
    fn profiles_stay_within_ranges_and_qualities_in_unit_cube() {
        let pop = NodePopulation::new(spec(64)).unwrap();
        let mut q = Vec::new();
        for i in 0..64 {
            let p = pop.profile(i, 7);
            assert!((1.0..=8.0).contains(&p.cpu_cores));
            assert!((100.0..=1000.0).contains(&p.bandwidth_mbps));
            assert!((2000.0..=10_000.0).contains(&p.data_size));
            pop.quality_into(i, 7, &mut q);
            assert_eq!(q.len(), 3);
            assert!(q.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn materialized_nodes_match_their_derived_attributes() {
        let pop = NodePopulation::new(spec(32)).unwrap();
        let node = pop.materialize(9);
        assert_eq!(node.id(), fmore_auction::NodeId(9));
        assert!((node.theta() - pop.theta(9)).abs() < 1e-15);
        assert_eq!(*node.ranges(), pop.spec().ranges);
        // Materialising twice yields the identical node state.
        let again = pop.materialize(9);
        assert_eq!(node.current(), again.current());
    }

    #[test]
    fn churn_bitmap_tracks_presence_and_floor() {
        let mut churn = PopulationChurn::new(130, ChurnModel::stable(), 1).unwrap();
        assert_eq!(churn.len(), 130);
        assert!(!churn.is_empty());
        assert_eq!(churn.present_count(), 130);
        assert!(churn.is_present(129));
        assert!(!churn.is_present(130), "out of range is absent");
        churn.mark_departed(129);
        assert!(!churn.is_present(129));
        assert_eq!(churn.present_count(), 129);
        // Stable model: nothing changes round over round.
        churn.advance_round();
        assert_eq!(churn.present_count(), 129);
        assert_eq!(churn.resident_bytes(), 3 * 8);
    }

    #[test]
    fn certain_departures_respect_the_floor_and_revival() {
        let mut model = ChurnModel::stable().with_membership(1.0, 0.0);
        model.min_present = 5;
        let mut churn = PopulationChurn::new(64, model, 3).unwrap();
        churn.advance_round();
        assert_eq!(churn.present_count(), 5, "floor holds under certain exodus");
        // Dropouts below the floor are revived at the next round boundary.
        for i in 0..64 {
            churn.mark_departed(i);
        }
        assert_eq!(churn.present_count(), 0);
        churn.advance_round();
        assert_eq!(churn.present_count(), 5);
    }

    #[test]
    fn churn_draws_are_deterministic_and_order_independent() {
        let model = ChurnModel::edge_default();
        let run = |rounds: usize| {
            let mut churn = PopulationChurn::new(256, model, 11).unwrap();
            for _ in 0..rounds {
                churn.advance_round();
            }
            (0..256).map(|i| churn.is_present(i)).collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(1), run(4));
        // The churn actually churns.
        let present = run(1).iter().filter(|&&p| p).count();
        assert!(present < 256);
        assert!(present >= model.min_present);
    }

    #[test]
    fn for_each_present_walks_index_ranges_in_order() {
        let mut churn = PopulationChurn::new(20, ChurnModel::stable(), 5).unwrap();
        churn.mark_departed(3);
        churn.mark_departed(7);
        let mut seen = Vec::new();
        churn.for_each_present(0..10, |i| seen.push(i));
        assert_eq!(seen, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        // Ranges beyond the population are clamped.
        let mut tail = Vec::new();
        churn.for_each_present(18..99, |i| tail.push(i));
        assert_eq!(tail, vec![18, 19]);
    }

    #[test]
    fn invalid_churn_models_are_rejected() {
        let mut bad = ChurnModel::stable();
        bad.dropout_prob = 2.0;
        assert!(PopulationChurn::new(10, bad, 1).is_err());
    }
}
