//! Scoring functions `s(q)` and the quasi-linear scoring rule `S(q, p) = s(q) − p`.
//!
//! Section III-A of the paper lists three classic utility/scoring families the aggregator may
//! broadcast:
//!
//! * **perfect substitution** (additive): `s(q) = α1 q1 + … + αm qm`,
//! * **perfect complementary**: `s(q) = min{α1 q1, …, αm qm}`,
//! * **general Cobb–Douglas**: `s(q) = q1^α1 · … · qm^αm` (optionally scaled).
//!
//! The simulator of Section V uses the scaled product `s(q1, q2) = 25·q1·q2` (Cobb–Douglas
//! with unit exponents) and the cluster deployment uses the additive form with weights
//! `(0.4, 0.3, 0.3)`. The walk-through example additionally normalises each resource by
//! min–max before scoring, which [`NormalizedScoring`] models.

use crate::error::AuctionError;
use crate::types::Quality;
use fmore_numerics::normalize::MinMaxNormalizer;
use std::sync::Arc;

/// A scoring (equivalently, aggregator utility) function `s(q1, …, qm)`.
///
/// Implementations must be non-decreasing in every resource dimension, matching the paper's
/// assumption `U'(·) ≥ 0`.
pub trait ScoringFunction: Send + Sync {
    /// Number of resource dimensions `m` the function expects.
    fn dims(&self) -> usize;

    /// Evaluates `s(q)`.
    ///
    /// Implementations may assume `q.len() == self.dims()`; [`ScoringFunction::evaluate`]
    /// performs the dimension check.
    fn value(&self, q: &[f64]) -> f64;

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str {
        "scoring"
    }

    /// Evaluates `s(q)` after validating dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::DimensionMismatch`] if `q` has the wrong number of dimensions.
    fn evaluate(&self, q: &[f64]) -> Result<f64, AuctionError> {
        if q.len() != self.dims() {
            return Err(AuctionError::DimensionMismatch {
                expected: self.dims(),
                actual: q.len(),
            });
        }
        Ok(self.value(q))
    }

    /// Scores a columnar batch of bids in one sweep: `qualities` holds one row of
    /// `self.dims()` components per bid (row-major, as stored by
    /// [`crate::store::BidStore`]), `asks[i]` is bid `i`'s payment ask, and `scores[i]`
    /// receives the quasi-linear score `s(q_i) − ask_i`.
    ///
    /// The default implementation evaluates [`ScoringFunction::value`] per row. The four
    /// concrete scoring families override it with monomorphized kernels that sweep the
    /// struct-of-arrays block directly — one virtual call per *shard* instead of one per
    /// *bid*, and no per-bid slice bounds checks. Every override is **bit-identical** to
    /// the per-bid path (same operations in the same association order); the property
    /// suite pins this for all four schemes.
    ///
    /// Callers guarantee `qualities.len() == asks.len() * self.dims()` and
    /// `scores.len() == asks.len()`; [`crate::store::BidStore::score_with`] validates
    /// dimensions before dispatching here.
    fn score_batch(&self, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
        let dims = self.dims().max(1);
        for ((q, ask), out) in qualities
            .chunks_exact(dims)
            .zip(asks)
            .zip(scores.iter_mut())
        {
            *out = self.value(q) - ask;
        }
    }
}

fn validate_weights(weights: &[f64]) -> Result<(), AuctionError> {
    if weights.is_empty() {
        return Err(AuctionError::InvalidParameter(
            "weights must not be empty".into(),
        ));
    }
    if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
        return Err(AuctionError::InvalidParameter(
            "weights must be finite and non-negative".into(),
        ));
    }
    if weights.iter().all(|w| *w == 0.0) {
        return Err(AuctionError::InvalidParameter(
            "at least one weight must be positive".into(),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------------------
// Monomorphized batch kernels for the two hot scoring families.
//
// Each kernel follows the workspace SIMD discipline (`fmore_numerics::simd`): an
// `#[inline(always)]` scalar core that sweeps the columnar block four rows at a time,
// an `#[target_feature(enable = "avx")]` wrapper compiling the *same* core with AVX code
// generation, and a `*_batch` dispatcher switching on the runtime gate. The four rows of
// an unrolled step are **independent** bids — AVX only widens them into vector lanes, it
// never reassociates the per-row fold — so both paths produce identical bits (pinned by
// the property suite and re-checked by CI's scalar-only job).

/// Additive kernel core: per row the left-associated `0.0 + Σ wᵢ qᵢ` fold of
/// [`Additive`]'s `value`, minus the ask.
#[inline(always)]
fn additive_core<const D: usize>(
    weights: &[f64; D],
    qualities: &[f64],
    asks: &[f64],
    scores: &mut [f64],
) {
    let q4 = qualities.chunks_exact(4 * D);
    let a4 = asks.chunks_exact(4);
    let q_rem = q4.remainder();
    let a_rem = a4.remainder();
    let (s4, s_rem) = scores.split_at_mut(asks.len() - a_rem.len());
    for ((q, a), s) in q4.zip(a4).zip(s4.chunks_exact_mut(4)) {
        for r in 0..4 {
            let mut acc = 0.0;
            for (d, w) in weights.iter().enumerate() {
                acc += w * q[r * D + d];
            }
            s[r] = acc - a[r];
        }
    }
    for ((q, a), s) in q_rem.chunks_exact(D).zip(a_rem).zip(s_rem.iter_mut()) {
        let mut acc = 0.0;
        for (w, x) in weights.iter().zip(q) {
            acc += w * x;
        }
        *s = acc - a;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn additive_avx<const D: usize>(
    weights: &[f64; D],
    qualities: &[f64],
    asks: &[f64],
    scores: &mut [f64],
) {
    additive_core(weights, qualities, asks, scores);
}

fn additive_batch<const D: usize>(
    weights: &[f64; D],
    qualities: &[f64],
    asks: &[f64],
    scores: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if fmore_numerics::avx_enabled() {
        // SAFETY: the gate only answers true after the runtime AVX feature check.
        unsafe { additive_avx(weights, qualities, asks, scores) };
        return;
    }
    additive_core(weights, qualities, asks, scores);
}

/// Additive fallback for dimension counts without a monomorphized kernel.
fn additive_generic(weights: &[f64], qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
    let dims = weights.len();
    for ((q, ask), out) in qualities
        .chunks_exact(dims)
        .zip(asks)
        .zip(scores.iter_mut())
    {
        let mut acc = 0.0;
        for (w, x) in weights.iter().zip(q) {
            acc += w * x;
        }
        *out = acc - ask;
    }
}

/// Unit-exponent Cobb–Douglas kernel core: per row the clamped product fold
/// `1.0 · Π max(qᵢ, 0)` of [`CobbDouglas`]'s `value` (with `powf(x, 1.0) = x`), scaled,
/// minus the ask.
#[inline(always)]
fn cobb_unit_core<const D: usize>(scale: f64, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
    let q4 = qualities.chunks_exact(4 * D);
    let a4 = asks.chunks_exact(4);
    let q_rem = q4.remainder();
    let a_rem = a4.remainder();
    let (s4, s_rem) = scores.split_at_mut(asks.len() - a_rem.len());
    for ((q, a), s) in q4.zip(a4).zip(s4.chunks_exact_mut(4)) {
        for r in 0..4 {
            let mut product = 1.0;
            for d in 0..D {
                product *= q[r * D + d].max(0.0);
            }
            s[r] = scale * product - a[r];
        }
    }
    for ((q, a), s) in q_rem.chunks_exact(D).zip(a_rem).zip(s_rem.iter_mut()) {
        let mut product = 1.0;
        for x in q {
            product *= x.max(0.0);
        }
        *s = scale * product - a;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn cobb_unit_avx<const D: usize>(
    scale: f64,
    qualities: &[f64],
    asks: &[f64],
    scores: &mut [f64],
) {
    cobb_unit_core::<D>(scale, qualities, asks, scores);
}

fn cobb_unit_batch<const D: usize>(
    scale: f64,
    qualities: &[f64],
    asks: &[f64],
    scores: &mut [f64],
) {
    #[cfg(target_arch = "x86_64")]
    if fmore_numerics::avx_enabled() {
        // SAFETY: the gate only answers true after the runtime AVX feature check.
        unsafe { cobb_unit_avx::<D>(scale, qualities, asks, scores) };
        return;
    }
    cobb_unit_core::<D>(scale, qualities, asks, scores);
}

/// Unit-exponent Cobb–Douglas fallback for dimension counts without a monomorphized
/// kernel.
fn cobb_unit_generic(scale: f64, dims: usize, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
    for ((q, ask), out) in qualities
        .chunks_exact(dims)
        .zip(asks)
        .zip(scores.iter_mut())
    {
        let mut product = 1.0;
        for x in q {
            product *= x.max(0.0);
        }
        *out = scale * product - ask;
    }
}

/// Perfect-substitution (additive) scoring: `s(q) = Σ αi qi`.
///
/// The paper recommends this form for substitutable resources such as GPU and CPU; the
/// 32-node cluster experiment uses it with weights `(0.4, 0.3, 0.3)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Additive {
    weights: Vec<f64>,
}

impl Additive {
    /// Creates an additive scoring function with the given per-resource weights `αi`.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidParameter`] if `weights` is empty, contains a negative
    /// or non-finite value, or is identically zero.
    pub fn new(weights: Vec<f64>) -> Result<Self, AuctionError> {
        validate_weights(&weights)?;
        Ok(Self { weights })
    }

    /// The per-resource weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The scalar cores behind [`ScoringFunction::score_batch`], bypassing the runtime AVX
    /// dispatch — the parity oracle the property suite compares the dispatched path
    /// against bit-for-bit.
    #[doc(hidden)]
    pub fn score_batch_scalar(&self, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
        match *self.weights.as_slice() {
            [w0] => additive_core(&[w0], qualities, asks, scores),
            [w0, w1] => additive_core(&[w0, w1], qualities, asks, scores),
            [w0, w1, w2] => additive_core(&[w0, w1, w2], qualities, asks, scores),
            _ => additive_generic(&self.weights, qualities, asks, scores),
        }
    }
}

impl ScoringFunction for Additive {
    fn dims(&self) -> usize {
        self.weights.len()
    }
    fn value(&self, q: &[f64]) -> f64 {
        self.weights.iter().zip(q).map(|(w, x)| w * x).sum()
    }
    fn name(&self) -> &'static str {
        "additive"
    }
    fn score_batch(&self, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
        // Each kernel replicates `value`'s left-associated `0.0 + Σ wᵢ qᵢ` fold per row
        // exactly, so batch scores are bit-identical to the per-bid path — on both the
        // AVX and scalar sides of the dispatch.
        match *self.weights.as_slice() {
            [w0] => additive_batch(&[w0], qualities, asks, scores),
            [w0, w1] => additive_batch(&[w0, w1], qualities, asks, scores),
            [w0, w1, w2] => additive_batch(&[w0, w1, w2], qualities, asks, scores),
            _ => additive_generic(&self.weights, qualities, asks, scores),
        }
    }
}

/// Perfect-complementary scoring: `s(q) = min{αi qi}`.
///
/// The paper recommends this form when all resources are needed simultaneously, e.g.
/// bandwidth and computing power; the walk-through example of Fig. 3 uses it with weights
/// `(0.5, 0.5)`.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfectComplementary {
    weights: Vec<f64>,
}

impl PerfectComplementary {
    /// Creates a perfect-complementary scoring function with the given weights `αi`.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidParameter`] for empty, negative, non-finite, or
    /// all-zero weights.
    pub fn new(weights: Vec<f64>) -> Result<Self, AuctionError> {
        validate_weights(&weights)?;
        Ok(Self { weights })
    }

    /// The per-resource weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl ScoringFunction for PerfectComplementary {
    fn dims(&self) -> usize {
        self.weights.len()
    }
    fn value(&self, q: &[f64]) -> f64 {
        self.weights
            .iter()
            .zip(q)
            .map(|(w, x)| w * x)
            .fold(f64::INFINITY, f64::min)
    }
    fn name(&self) -> &'static str {
        "perfect-complementary"
    }
    fn score_batch(&self, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
        // Replicates `value`'s `min`-fold from +∞ in the same order — bit-identical.
        match *self.weights.as_slice() {
            [w0, w1] => {
                for ((q, ask), out) in qualities.chunks_exact(2).zip(asks).zip(scores.iter_mut()) {
                    *out = f64::min(f64::min(f64::INFINITY, w0 * q[0]), w1 * q[1]) - ask;
                }
            }
            [w0, w1, w2] => {
                for ((q, ask), out) in qualities.chunks_exact(3).zip(asks).zip(scores.iter_mut()) {
                    let m = f64::min(f64::min(f64::INFINITY, w0 * q[0]), w1 * q[1]);
                    *out = f64::min(m, w2 * q[2]) - ask;
                }
            }
            _ => {
                let dims = self.weights.len();
                for ((q, ask), out) in qualities
                    .chunks_exact(dims)
                    .zip(asks)
                    .zip(scores.iter_mut())
                {
                    let mut m = f64::INFINITY;
                    for (w, x) in self.weights.iter().zip(q) {
                        m = f64::min(m, w * x);
                    }
                    *out = m - ask;
                }
            }
        }
    }
}

/// General (scaled) Cobb–Douglas scoring: `s(q) = scale · Π qi^αi`.
///
/// With unit exponents and `scale = 25` this is exactly the simulator's scoring function
/// `s(q1, q2) = 25·q1·q2` from Section V-A.
#[derive(Debug, Clone, PartialEq)]
pub struct CobbDouglas {
    scale: f64,
    exponents: Vec<f64>,
}

impl CobbDouglas {
    /// Creates a Cobb–Douglas scoring function with unit scale.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidParameter`] for invalid exponents.
    pub fn new(exponents: Vec<f64>) -> Result<Self, AuctionError> {
        Self::with_scale(1.0, exponents)
    }

    /// Creates a Cobb–Douglas scoring function `scale · Π qi^αi`.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidParameter`] if `scale` is not positive/finite or the
    /// exponent vector is invalid.
    pub fn with_scale(scale: f64, exponents: Vec<f64>) -> Result<Self, AuctionError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(AuctionError::InvalidParameter(format!(
                "Cobb-Douglas scale must be positive, got {scale}"
            )));
        }
        validate_weights(&exponents)?;
        Ok(Self { scale, exponents })
    }

    /// The per-resource exponents `αi`.
    pub fn exponents(&self) -> &[f64] {
        &self.exponents
    }

    /// The multiplicative scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The scalar cores behind [`ScoringFunction::score_batch`], bypassing the runtime AVX
    /// dispatch — the parity oracle the property suite compares the dispatched path
    /// against bit-for-bit.
    #[doc(hidden)]
    pub fn score_batch_scalar(&self, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
        let dims = self.exponents.len();
        if self.exponents.iter().all(|a| *a == 1.0) {
            match dims {
                2 => cobb_unit_core::<2>(self.scale, qualities, asks, scores),
                3 => cobb_unit_core::<3>(self.scale, qualities, asks, scores),
                _ => cobb_unit_generic(self.scale, dims, qualities, asks, scores),
            }
            return;
        }
        self.powf_batch(qualities, asks, scores);
    }

    /// The general `powf` sweep shared by the dispatched and scalar batch paths.
    fn powf_batch(&self, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
        let dims = self.exponents.len();
        for ((q, ask), out) in qualities
            .chunks_exact(dims)
            .zip(asks)
            .zip(scores.iter_mut())
        {
            let mut product = 1.0;
            for (a, x) in self.exponents.iter().zip(q) {
                product *= x.max(0.0).powf(*a);
            }
            *out = self.scale * product - ask;
        }
    }
}

impl ScoringFunction for CobbDouglas {
    fn dims(&self) -> usize {
        self.exponents.len()
    }
    fn value(&self, q: &[f64]) -> f64 {
        let product: f64 = self
            .exponents
            .iter()
            .zip(q)
            .map(|(a, x)| x.max(0.0).powf(*a))
            .product();
        self.scale * product
    }
    fn name(&self) -> &'static str {
        "cobb-douglas"
    }
    fn score_batch(&self, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
        let dims = self.exponents.len();
        // The simulator's `25·q1·q2` form has unit exponents: `powf(x, 1.0)` is exactly
        // `x` under IEEE 754 (pinned by the bit-parity property test), so the hot path is
        // a clamped product with no `pow` at all — and with a monomorphized 4-row kernel
        // behind the runtime AVX dispatch at the common dimension counts.
        if self.exponents.iter().all(|a| *a == 1.0) {
            match dims {
                2 => cobb_unit_batch::<2>(self.scale, qualities, asks, scores),
                3 => cobb_unit_batch::<3>(self.scale, qualities, asks, scores),
                _ => cobb_unit_generic(self.scale, dims, qualities, asks, scores),
            }
            return;
        }
        self.powf_batch(qualities, asks, scores);
    }
}

/// Wraps an inner scoring function with per-dimension min–max normalisation, as in the
/// walk-through example of Section III-B where data size and bandwidth live on very
/// different scales.
#[derive(Debug, Clone)]
pub struct NormalizedScoring<S> {
    inner: S,
    normalizers: Vec<MinMaxNormalizer>,
}

impl<S: ScoringFunction> NormalizedScoring<S> {
    /// Creates a normalised scoring function.
    ///
    /// `ranges[i]` gives the `(min, max)` range used to normalise resource `i` before it is
    /// passed to the inner function.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::DimensionMismatch`] if the number of ranges does not match
    /// the inner function's dimensions.
    pub fn new(inner: S, ranges: Vec<(f64, f64)>) -> Result<Self, AuctionError> {
        if ranges.len() != inner.dims() {
            return Err(AuctionError::DimensionMismatch {
                expected: inner.dims(),
                actual: ranges.len(),
            });
        }
        let normalizers = ranges
            .iter()
            .map(|&(lo, hi)| MinMaxNormalizer::new(lo, hi))
            .collect();
        Ok(Self { inner, normalizers })
    }

    /// Access the wrapped scoring function.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ScoringFunction> ScoringFunction for NormalizedScoring<S> {
    fn dims(&self) -> usize {
        self.inner.dims()
    }
    fn value(&self, q: &[f64]) -> f64 {
        let normalized: Vec<f64> = q
            .iter()
            .zip(&self.normalizers)
            .map(|(x, n)| n.normalize(*x))
            .collect();
        self.inner.value(&normalized)
    }
    fn name(&self) -> &'static str {
        "normalized"
    }
    fn score_batch(&self, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
        // Normalise a block of rows at a time, then hand the block to the inner kernel:
        // the per-bid `Vec` of `value` becomes one block buffer per call, and the inner
        // sweep stays monomorphized (`S` is a concrete type here).
        let dims = self.inner.dims().max(1);
        const BLOCK_ROWS: usize = 128;
        let mut block = vec![0.0; BLOCK_ROWS.min(asks.len().max(1)) * dims];
        let mut row = 0usize;
        while row < asks.len() {
            let rows = BLOCK_ROWS.min(asks.len() - row);
            let src = &qualities[row * dims..(row + rows) * dims];
            let dst = &mut block[..rows * dims];
            for (src_row, dst_row) in src.chunks_exact(dims).zip(dst.chunks_exact_mut(dims)) {
                for ((x, n), slot) in src_row.iter().zip(&self.normalizers).zip(dst_row) {
                    *slot = n.normalize(*x);
                }
            }
            self.inner
                .score_batch(dst, &asks[row..row + rows], &mut scores[row..row + rows]);
            row += rows;
        }
    }
}

// Allow shared scoring functions (Arc) and references to be used wherever a ScoringFunction
// is expected.
impl<S: ScoringFunction + ?Sized> ScoringFunction for Arc<S> {
    fn dims(&self) -> usize {
        (**self).dims()
    }
    fn value(&self, q: &[f64]) -> f64 {
        (**self).value(q)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn score_batch(&self, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
        (**self).score_batch(qualities, asks, scores);
    }
}

impl<S: ScoringFunction + ?Sized> ScoringFunction for &S {
    fn dims(&self) -> usize {
        (**self).dims()
    }
    fn value(&self, q: &[f64]) -> f64 {
        (**self).value(q)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn score_batch(&self, qualities: &[f64], asks: &[f64], scores: &mut [f64]) {
        (**self).score_batch(qualities, asks, scores);
    }
}

/// The quasi-linear scoring rule `S(q, p) = s(q) − p` broadcast by the aggregator in the
/// bid-ask step (Eq. 4 of the paper).
#[derive(Clone)]
pub struct ScoringRule {
    s: Arc<dyn ScoringFunction>,
}

impl std::fmt::Debug for ScoringRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoringRule")
            .field("s", &self.s.name())
            .field("dims", &self.s.dims())
            .finish()
    }
}

impl ScoringRule {
    /// Wraps a scoring function into the quasi-linear rule `S(q, p) = s(q) − p`.
    pub fn new<S: ScoringFunction + 'static>(s: S) -> Self {
        Self { s: Arc::new(s) }
    }

    /// Number of resource dimensions the rule expects.
    pub fn dims(&self) -> usize {
        self.s.dims()
    }

    /// Evaluates the resource part `s(q)` alone.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::DimensionMismatch`] if `q` has the wrong dimensions.
    pub fn resource_value(&self, q: &Quality) -> Result<f64, AuctionError> {
        self.s.evaluate(q.as_slice())
    }

    /// Evaluates the full score `S(q, p) = s(q) − p`.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::DimensionMismatch`] if `q` has the wrong dimensions.
    pub fn score(&self, q: &Quality, payment_ask: f64) -> Result<f64, AuctionError> {
        Ok(self.resource_value(q)? - payment_ask)
    }

    /// Scores a columnar batch under the quasi-linear rule in one sweep: one virtual call
    /// for the whole block, dispatching to the scoring family's monomorphized
    /// [`ScoringFunction::score_batch`] kernel. Bit-identical to calling
    /// [`ScoringRule::score`] per bid.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::DimensionMismatch`] when the column lengths disagree with
    /// the rule's dimensions (`qualities.len() == asks.len() * dims`,
    /// `scores.len() == asks.len()`).
    pub fn score_batch(
        &self,
        qualities: &[f64],
        asks: &[f64],
        scores: &mut [f64],
    ) -> Result<(), AuctionError> {
        if qualities.len() != asks.len() * self.dims() || scores.len() != asks.len() {
            return Err(AuctionError::DimensionMismatch {
                expected: asks.len() * self.dims(),
                actual: qualities.len(),
            });
        }
        self.s.score_batch(qualities, asks, scores);
        Ok(())
    }

    /// Access the underlying scoring function as a trait object.
    pub fn function(&self) -> &dyn ScoringFunction {
        self.s.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_scores_linearly() {
        let s = Additive::new(vec![0.4, 0.3, 0.3]).unwrap();
        assert_eq!(s.dims(), 3);
        assert_eq!(s.name(), "additive");
        assert!((s.value(&[1.0, 2.0, 3.0]) - (0.4 + 0.6 + 0.9)).abs() < 1e-12);
        assert_eq!(s.weights(), &[0.4, 0.3, 0.3]);
    }

    #[test]
    fn invalid_weights_rejected_everywhere() {
        assert!(Additive::new(vec![]).is_err());
        assert!(Additive::new(vec![-1.0, 2.0]).is_err());
        assert!(Additive::new(vec![0.0, 0.0]).is_err());
        assert!(PerfectComplementary::new(vec![f64::NAN]).is_err());
        assert!(CobbDouglas::new(vec![]).is_err());
        assert!(CobbDouglas::with_scale(0.0, vec![1.0]).is_err());
        assert!(CobbDouglas::with_scale(-3.0, vec![1.0]).is_err());
    }

    #[test]
    fn perfect_complementary_takes_minimum() {
        let s = PerfectComplementary::new(vec![0.5, 0.5]).unwrap();
        assert!((s.value(&[0.75, 0.842]) - 0.375).abs() < 1e-12);
        assert_eq!(s.name(), "perfect-complementary");
        assert_eq!(s.weights(), &[0.5, 0.5]);
    }

    #[test]
    fn cobb_douglas_matches_simulator_form() {
        // s(q1, q2) = 25 q1 q2, the simulator scoring rule.
        let s = CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap();
        assert!((s.value(&[0.4, 0.8]) - 8.0).abs() < 1e-12);
        assert_eq!(s.scale(), 25.0);
        assert_eq!(s.exponents(), &[1.0, 1.0]);
        // Negative inputs are clamped to zero rather than producing NaN.
        assert_eq!(s.value(&[-1.0, 0.5]), 0.0);
    }

    #[test]
    fn cobb_douglas_exponents_shape_returns() {
        let s = CobbDouglas::new(vec![0.5, 0.5]).unwrap();
        assert!((s.value(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn scoring_functions_are_monotone_in_quality() {
        let functions: Vec<Box<dyn ScoringFunction>> = vec![
            Box::new(Additive::new(vec![0.3, 0.7]).unwrap()),
            Box::new(PerfectComplementary::new(vec![0.5, 0.5]).unwrap()),
            Box::new(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap()),
        ];
        for f in &functions {
            let base = f.value(&[0.4, 0.6]);
            assert!(
                f.value(&[0.5, 0.6]) >= base,
                "{} not monotone in q1",
                f.name()
            );
            assert!(
                f.value(&[0.4, 0.7]) >= base,
                "{} not monotone in q2",
                f.name()
            );
        }
    }

    #[test]
    fn evaluate_validates_dimensions() {
        let s = Additive::new(vec![1.0, 1.0]).unwrap();
        assert!(s.evaluate(&[1.0, 2.0]).is_ok());
        assert_eq!(
            s.evaluate(&[1.0]).unwrap_err(),
            AuctionError::DimensionMismatch {
                expected: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn normalized_scoring_reproduces_walkthrough_score() {
        // Node A in round 1: (4000, 85 Mb, p = 0.20) with ranges [1000, 5000] and [5, 100].
        let inner = PerfectComplementary::new(vec![0.5, 0.5]).unwrap();
        let s = NormalizedScoring::new(inner, vec![(1000.0, 5000.0), (5.0, 100.0)]).unwrap();
        let rule = ScoringRule::new(s);
        let score = rule.score(&Quality::new(vec![4000.0, 85.0]), 0.20).unwrap();
        assert!(
            (score - 0.175).abs() < 1e-3,
            "expected the paper's 0.175, got {score}"
        );
    }

    #[test]
    fn normalized_scoring_checks_range_count() {
        let inner = Additive::new(vec![1.0, 1.0]).unwrap();
        assert!(NormalizedScoring::new(inner, vec![(0.0, 1.0)]).is_err());
    }

    #[test]
    fn scoring_rule_is_quasi_linear_in_payment() {
        let rule = ScoringRule::new(Additive::new(vec![1.0]).unwrap());
        let q = Quality::new(vec![2.0]);
        let s0 = rule.score(&q, 0.0).unwrap();
        let s1 = rule.score(&q, 0.7).unwrap();
        assert!((s0 - s1 - 0.7).abs() < 1e-12);
        assert_eq!(rule.dims(), 1);
        assert!(format!("{rule:?}").contains("additive"));
    }

    #[test]
    fn arc_and_ref_forwarding() {
        let arc: Arc<dyn ScoringFunction> = Arc::new(Additive::new(vec![2.0]).unwrap());
        assert_eq!(arc.dims(), 1);
        assert_eq!(arc.value(&[3.0]), 6.0);
        let inner = Additive::new(vec![2.0]).unwrap();
        let r: &dyn ScoringFunction = &inner;
        assert_eq!((&r).value(&[3.0]), 6.0);
    }
}
