//! The five-node walk-through example of Section III-B (Fig. 3).
//!
//! Two resources are considered — training-data size over `[1000, 5000]` samples and
//! bandwidth over `[5, 100]` Mb — with the perfect-complementary scoring rule
//! `S(q, p) = min{0.5·q̂1, 0.5·q̂2} − p`, where `q̂` denotes the min–max-normalised qualities.
//! Three winners (`K = 3`) are selected per round under first-price payment.
//!
//! The module reproduces the paper's numbers exactly and is reused by the
//! `auction_walkthrough` example and the integration tests.

use crate::error::AuctionError;
use crate::mechanism::{Auction, AuctionOutcome, SubmittedBid};
use crate::pricing::PricingRule;
use crate::scoring::{NormalizedScoring, PerfectComplementary, ScoringRule};
use crate::types::{NodeId, Quality};
use crate::winner::SelectionRule;
use rand::Rng;

/// Data-size range of the example, in samples.
pub const DATA_RANGE: (f64, f64) = (1000.0, 5000.0);
/// Bandwidth range of the example, in Mb.
pub const BANDWIDTH_RANGE: (f64, f64) = (5.0, 100.0);
/// Number of winners per round in the example.
pub const WINNERS: usize = 3;

/// Node labels used in Fig. 3, in submission order (A, B, C, D, E).
pub const NODE_LABELS: [char; 5] = ['A', 'B', 'C', 'D', 'E'];

/// Builds the walk-through scoring rule
/// `S(q, p) = min{0.5·norm(q1), 0.5·norm(q2)} − p`.
///
/// # Errors
///
/// Never fails in practice; the error type is kept for API uniformity.
pub fn walkthrough_scoring_rule() -> Result<ScoringRule, AuctionError> {
    let inner = PerfectComplementary::new(vec![0.5, 0.5])?;
    let normalized = NormalizedScoring::new(inner, vec![DATA_RANGE, BANDWIDTH_RANGE])?;
    Ok(ScoringRule::new(normalized))
}

/// Builds the walk-through auction (`K = 3`, top-K selection, first-price payment).
///
/// # Errors
///
/// Never fails in practice; the error type is kept for API uniformity.
pub fn walkthrough_auction() -> Result<Auction, AuctionError> {
    Ok(Auction::new(
        walkthrough_scoring_rule()?,
        WINNERS,
        SelectionRule::TopK,
        PricingRule::FirstPrice,
    ))
}

/// The five sealed bids of round 1: (data size, bandwidth, expected payment).
pub fn round1_bids() -> Vec<SubmittedBid> {
    bids(&[
        (4000.0, 85.0, 0.20),
        (3000.0, 35.0, 0.10),
        (3500.0, 75.0, 0.18),
        (5000.0, 85.0, 0.20),
        (5000.0, 100.0, 0.20),
    ])
}

/// The five sealed bids of round 2, after nodes revise their resources and asks.
pub fn round2_bids() -> Vec<SubmittedBid> {
    bids(&[
        (4000.0, 85.0, 0.16),
        (3500.0, 45.0, 0.10),
        (4000.0, 80.0, 0.15),
        (4000.0, 80.0, 0.20),
        (5000.0, 100.0, 0.30),
    ])
}

fn bids(rows: &[(f64, f64, f64)]) -> Vec<SubmittedBid> {
    rows.iter()
        .enumerate()
        .map(|(i, &(data, bandwidth, ask))| {
            SubmittedBid::new(NodeId(i as u64), Quality::new(vec![data, bandwidth]), ask)
        })
        .collect()
}

/// Runs both rounds of the walk-through example and returns the two outcomes.
///
/// # Errors
///
/// Propagates auction errors (none occur for the fixed example data).
pub fn run_walkthrough<R: Rng + ?Sized>(
    rng: &mut R,
) -> Result<(AuctionOutcome, AuctionOutcome), AuctionError> {
    let auction = walkthrough_auction()?;
    let round1 = auction.run(round1_bids(), rng)?;
    let round2 = auction.run(round2_bids(), rng)?;
    Ok((round1, round2))
}

/// Converts a node id of this example into its Fig. 3 label (A–E).
pub fn label_of(node: NodeId) -> char {
    NODE_LABELS.get(node.0 as usize).copied().unwrap_or('?')
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_numerics::seeded_rng;

    #[test]
    fn round1_scores_match_the_paper() {
        let rule = walkthrough_scoring_rule().unwrap();
        // Paper, Fig. 3 round-1 table: E 0.300, D 0.221, A 0.175, C 0.133, B 0.058.
        let expected = [0.175, 0.058, 0.133, 0.221, 0.300];
        for (bid, want) in round1_bids().iter().zip(expected) {
            let score = rule.score(&bid.quality, bid.ask).unwrap();
            assert!(
                (score - want).abs() < 2e-3,
                "node {} score {score} != paper {want}",
                label_of(bid.node)
            );
        }
    }

    #[test]
    fn round2_scores_match_the_paper() {
        let rule = walkthrough_scoring_rule().unwrap();
        // Paper, Fig. 3 round-2 table: C 0.225, A 0.215, E 0.200, D 0.175, B 0.111.
        let expected = [0.215, 0.111, 0.225, 0.175, 0.200];
        for (bid, want) in round2_bids().iter().zip(expected) {
            let score = rule.score(&bid.quality, bid.ask).unwrap();
            assert!(
                (score - want).abs() < 2e-3,
                "node {} score {score} != paper {want}",
                label_of(bid.node)
            );
        }
    }

    #[test]
    fn winner_sets_match_the_paper() {
        let mut rng = seeded_rng(1);
        let (round1, round2) = run_walkthrough(&mut rng).unwrap();

        let mut w1: Vec<char> = round1.winner_ids().iter().copied().map(label_of).collect();
        w1.sort_unstable();
        assert_eq!(
            w1,
            vec!['A', 'D', 'E'],
            "round 1 winners should be {{A, D, E}}"
        );

        let mut w2: Vec<char> = round2.winner_ids().iter().copied().map(label_of).collect();
        w2.sort_unstable();
        assert_eq!(
            w2,
            vec!['A', 'C', 'E'],
            "round 2 winners should be {{A, C, E}}"
        );
    }

    #[test]
    fn first_price_payments_match_the_paper() {
        let mut rng = seeded_rng(2);
        let (round1, round2) = run_walkthrough(&mut rng).unwrap();
        // Round 1: winners are paid what they asked (first price): A 0.20, D 0.20, E 0.20.
        for award in round1.winners() {
            assert!((award.payment - 0.20).abs() < 1e-9);
        }
        // Round 2: A 0.16, C 0.15, E 0.30.
        for award in round2.winners() {
            let expected = match label_of(award.node) {
                'A' => 0.16,
                'C' => 0.15,
                'E' => 0.30,
                other => panic!("unexpected round-2 winner {other}"),
            };
            assert!((award.payment - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn node_c_rises_from_fourth_to_first_between_rounds() {
        let mut rng = seeded_rng(3);
        let (round1, round2) = run_walkthrough(&mut rng).unwrap();
        let rank_of_c = |outcome: &AuctionOutcome| {
            outcome
                .ranked()
                .iter()
                .position(|b| label_of(b.node) == 'C')
                .unwrap()
        };
        assert_eq!(rank_of_c(&round1), 3, "C is ranked 4th in round 1");
        assert_eq!(rank_of_c(&round2), 0, "C is ranked 1st in round 2");
    }

    #[test]
    fn label_helper_handles_unknown_nodes() {
        assert_eq!(label_of(NodeId(0)), 'A');
        assert_eq!(label_of(NodeId(4)), 'E');
        assert_eq!(label_of(NodeId(99)), '?');
    }
}
