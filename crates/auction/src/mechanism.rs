//! The auction round run by the aggregator: bid collection → winner determination → payment.
//!
//! [`Auction`] bundles the broadcast scoring rule, the number of winners `K`, the selection
//! rule (FMore or ψ-FMore), and the pricing rule. [`Auction::run`] consumes the sealed bids
//! of one federated-learning round and produces an [`AuctionOutcome`] with the ranked bids,
//! the winner awards, and the aggregator's realised profit.

use crate::error::AuctionError;
use crate::pricing::PricingRule;
use crate::scoring::{ScoringFunction, ScoringRule};
use crate::types::{NodeId, Quality, ScoredBid};
use crate::winner::SelectionRule;
use fmore_numerics::rng::shuffle;
use rand::Rng;

/// A sealed bid `(q, p)` submitted by an edge node.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmittedBid {
    /// The bidding node.
    pub node: NodeId,
    /// Declared resource qualities.
    pub quality: Quality,
    /// Expected payment `p`.
    pub ask: f64,
}

impl SubmittedBid {
    /// Creates a sealed bid.
    pub fn new(node: NodeId, quality: Quality, ask: f64) -> Self {
        Self { node, quality, ask }
    }
}

/// The award granted to one auction winner.
#[derive(Debug, Clone, PartialEq)]
pub struct Award {
    /// The winning node.
    pub node: NodeId,
    /// The quality it committed to provide.
    pub quality: Quality,
    /// Its score `S(q, p)` under the broadcast rule.
    pub score: f64,
    /// The payment it will receive after completing local training.
    pub payment: f64,
}

/// The result of one auction round.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionOutcome {
    /// All bids, scored and sorted in descending score order.
    pub ranked: Vec<ScoredBid>,
    /// Awards for the selected winners, in selection order.
    pub winners: Vec<Award>,
}

impl AuctionOutcome {
    /// Node ids of the winners, in selection order.
    pub fn winner_ids(&self) -> Vec<NodeId> {
        self.winners.iter().map(|w| w.node).collect()
    }

    /// Total payment promised to the winners.
    pub fn total_payment(&self) -> f64 {
        self.winners.iter().map(|w| w.payment).sum()
    }

    /// Aggregator profit `V = Σ_{i ∈ W} (U(q_i) − p_i)` under utility `U` (Eq. 6).
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::DimensionMismatch`] if `utility` expects a different number of
    /// resource dimensions than the winning bids carry.
    pub fn aggregator_profit<U: ScoringFunction>(&self, utility: &U) -> Result<f64, AuctionError> {
        let mut total = 0.0;
        for w in &self.winners {
            total += utility.evaluate(w.quality.as_slice())? - w.payment;
        }
        Ok(total)
    }

    /// Mean score of the winners (reported in Figs. 9b and 10b of the paper).
    pub fn mean_winner_score(&self) -> f64 {
        if self.winners.is_empty() {
            return 0.0;
        }
        self.winners.iter().map(|w| w.score).sum::<f64>() / self.winners.len() as f64
    }

    /// Mean payment of the winners (reported in Figs. 9b and 10b of the paper).
    pub fn mean_winner_payment(&self) -> f64 {
        if self.winners.is_empty() {
            return 0.0;
        }
        self.total_payment() / self.winners.len() as f64
    }
}

/// One multi-dimensional procurement auction with `K` winners.
#[derive(Debug, Clone)]
pub struct Auction {
    scoring: ScoringRule,
    k: usize,
    selection: SelectionRule,
    pricing: PricingRule,
}

impl Auction {
    /// Creates an auction with the broadcast scoring rule, winner count `K`, selection rule,
    /// and pricing rule.
    pub fn new(
        scoring: ScoringRule,
        k: usize,
        selection: SelectionRule,
        pricing: PricingRule,
    ) -> Self {
        Self {
            scoring,
            k,
            selection,
            pricing,
        }
    }

    /// The broadcast scoring rule (what the aggregator sends in the bid-ask step).
    pub fn scoring_rule(&self) -> &ScoringRule {
        &self.scoring
    }

    /// The number of winners `K` the aggregator recruits per round.
    pub fn winners_per_round(&self) -> usize {
        self.k
    }

    /// The selection rule in use.
    pub fn selection_rule(&self) -> SelectionRule {
        self.selection
    }

    /// The pricing rule in use.
    pub fn pricing_rule(&self) -> PricingRule {
        self.pricing
    }

    /// Scores a full bid population in one call, preserving input order.
    ///
    /// This is the batched entry point every caller should prefer over scoring bid-by-bid:
    /// validation and scoring happen in a single pass over the population.
    ///
    /// Bids with invalid quality vectors (negative or non-finite components, wrong dimension)
    /// are rejected with an error rather than silently dropped, because a malformed bid
    /// indicates a protocol violation by the submitting node.
    ///
    /// # Errors
    ///
    /// [`AuctionError::DimensionMismatch`] / [`AuctionError::InvalidParameter`] for malformed
    /// bids.
    pub fn score_bids(&self, bids: Vec<SubmittedBid>) -> Result<Vec<ScoredBid>, AuctionError> {
        let mut scored = Vec::with_capacity(bids.len());
        for bid in bids {
            if !bid.quality.is_valid() {
                return Err(AuctionError::InvalidParameter(format!(
                    "bid from {} has an invalid quality vector",
                    bid.node
                )));
            }
            if !bid.ask.is_finite() || bid.ask < 0.0 {
                return Err(AuctionError::InvalidParameter(format!(
                    "bid from {} has an invalid payment ask {}",
                    bid.node, bid.ask
                )));
            }
            let score = self.scoring.score(&bid.quality, bid.ask)?;
            scored.push(ScoredBid {
                node: bid.node,
                quality: bid.quality,
                ask: bid.ask,
                score,
            });
        }
        Ok(scored)
    }

    /// Scores and ranks a full bid population: one batched scoring pass, then a descending
    /// sort by score with ties resolved by the flip of a coin (Section V-A) — the population
    /// is shuffled before the stable sort so equal scores end up in random relative order.
    ///
    /// # Errors
    ///
    /// Propagates [`Auction::score_bids`] failures.
    pub fn rank_bids<R: Rng + ?Sized>(
        &self,
        bids: Vec<SubmittedBid>,
        rng: &mut R,
    ) -> Result<Vec<ScoredBid>, AuctionError> {
        let mut scored = self.score_bids(bids)?;
        shuffle(&mut scored, rng);
        scored.sort_by(ScoredBid::by_descending_score);
        Ok(scored)
    }

    /// Runs one auction round over the submitted sealed bids: batched scoring and ranking
    /// ([`Auction::rank_bids`]), winner selection, and payment computation.
    ///
    /// # Errors
    ///
    /// * [`AuctionError::NoBids`] when `bids` is empty,
    /// * [`AuctionError::InvalidGame`] when the auction was configured with `K = 0` or an
    ///   invalid ψ,
    /// * [`AuctionError::DimensionMismatch`] / [`AuctionError::InvalidParameter`] for
    ///   malformed bids.
    pub fn run<R: Rng + ?Sized>(
        &self,
        bids: Vec<SubmittedBid>,
        rng: &mut R,
    ) -> Result<AuctionOutcome, AuctionError> {
        if bids.is_empty() {
            return Err(AuctionError::NoBids);
        }
        if self.k == 0 || !self.selection.is_valid() {
            return Err(AuctionError::InvalidGame {
                n: bids.len(),
                k: self.k,
            });
        }

        let scored = self.rank_bids(bids, rng)?;
        let winner_indices = self.selection.select(&scored, self.k, rng);
        let best_losing_score = scored
            .iter()
            .enumerate()
            .filter(|(i, _)| !winner_indices.contains(i))
            .map(|(_, b)| b.score)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });

        let winners = winner_indices
            .iter()
            .map(|&idx| {
                let payment = self
                    .pricing
                    .payment(&self.scoring, &scored, idx, best_losing_score);
                let b = &scored[idx];
                Award {
                    node: b.node,
                    quality: b.quality.clone(),
                    score: b.score,
                    payment,
                }
            })
            .collect();

        Ok(AuctionOutcome {
            ranked: scored,
            winners,
        })
    }

    /// Re-runs winner determination over a **standing bid pool** — the ranked bids of a round
    /// whose winner set came up short (dropouts, departures, deadline misses in a dynamic MEC
    /// deployment).
    ///
    /// The paper's dynamic-environment discussion (§I, §VI) motivates exactly this: nodes
    /// "may join or leave anytime", so the aggregator must be able to recruit replacements
    /// without re-broadcasting the scoring rule and waiting for a fresh sealed-bid phase.
    /// Because every standing bid is already a sealed equilibrium bid for *this* round's
    /// rule, re-running selection over the not-yet-awarded remainder is incentive-neutral:
    /// no node can improve its outcome by withholding in the first phase, since the same
    /// bid competes under the same rule in every wave.
    ///
    /// `exclude` lists nodes that must not be awarded again (prior winners — including the
    /// ones that dropped out — and nodes that have since departed). Up to `quota`
    /// replacements are selected from the remaining pool under the auction's own selection
    /// and pricing rules; fewer (possibly zero) awards are returned when the pool is too
    /// small. `ranked` must be in descending score order, as produced by
    /// [`Auction::rank_bids`] / [`AuctionOutcome::ranked`].
    pub fn reauction<R: Rng + ?Sized>(
        &self,
        ranked: &[ScoredBid],
        exclude: &[NodeId],
        quota: usize,
        rng: &mut R,
    ) -> Vec<Award> {
        if quota == 0 {
            return Vec::new();
        }
        let pool: Vec<ScoredBid> = ranked
            .iter()
            .filter(|b| !exclude.contains(&b.node))
            .cloned()
            .collect();
        if pool.is_empty() {
            return Vec::new();
        }
        let winner_indices = self.selection.select(&pool, quota, rng);
        let best_losing_score = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| !winner_indices.contains(i))
            .map(|(_, b)| b.score)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });
        winner_indices
            .iter()
            .map(|&idx| {
                let payment = self
                    .pricing
                    .payment(&self.scoring, &pool, idx, best_losing_score);
                let b = &pool[idx];
                Award {
                    node: b.node,
                    quality: b.quality.clone(),
                    score: b.score,
                    payment,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{Additive, CobbDouglas};
    use fmore_numerics::seeded_rng;

    fn simple_auction(k: usize) -> Auction {
        Auction::new(
            ScoringRule::new(Additive::new(vec![1.0]).unwrap()),
            k,
            SelectionRule::TopK,
            PricingRule::FirstPrice,
        )
    }

    fn bid(node: u64, q: f64, ask: f64) -> SubmittedBid {
        SubmittedBid::new(NodeId(node), Quality::new(vec![q]), ask)
    }

    #[test]
    fn selects_top_k_by_score() {
        let auction = simple_auction(2);
        let mut rng = seeded_rng(1);
        let outcome = auction
            .run(
                vec![
                    bid(0, 1.0, 0.5),
                    bid(1, 1.0, 0.1),
                    bid(2, 0.9, 0.2),
                    bid(3, 0.2, 0.0),
                ],
                &mut rng,
            )
            .unwrap();
        assert_eq!(outcome.winner_ids(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(outcome.ranked.len(), 4);
        assert!((outcome.total_payment() - 0.3).abs() < 1e-12);
        assert!((outcome.mean_winner_payment() - 0.15).abs() < 1e-12);
        assert!(outcome.mean_winner_score() > 0.0);
    }

    #[test]
    fn aggregator_profit_uses_utility_minus_payment() {
        let auction = simple_auction(2);
        let mut rng = seeded_rng(2);
        let outcome = auction
            .run(
                vec![bid(0, 1.0, 0.1), bid(1, 0.8, 0.2), bid(2, 0.5, 0.1)],
                &mut rng,
            )
            .unwrap();
        let utility = Additive::new(vec![1.0]).unwrap();
        let profit = outcome.aggregator_profit(&utility).unwrap();
        // Winners: node 0 (1.0 - 0.1) and node 1 (0.8 - 0.2) => profit 1.5.
        assert!((profit - 1.5).abs() < 1e-12);
        // Wrong-dimension utility is rejected.
        let bad = Additive::new(vec![1.0, 1.0]).unwrap();
        assert!(outcome.aggregator_profit(&bad).is_err());
    }

    #[test]
    fn k_larger_than_population_awards_everyone() {
        let auction = simple_auction(10);
        let mut rng = seeded_rng(3);
        let outcome = auction
            .run(vec![bid(0, 1.0, 0.1), bid(1, 0.5, 0.1)], &mut rng)
            .unwrap();
        assert_eq!(outcome.winners.len(), 2);
    }

    #[test]
    fn rejects_empty_and_malformed_input() {
        let auction = simple_auction(2);
        let mut rng = seeded_rng(4);
        assert_eq!(
            auction.run(vec![], &mut rng).unwrap_err(),
            AuctionError::NoBids
        );

        let bad_quality = SubmittedBid::new(NodeId(0), Quality::new(vec![-1.0]), 0.1);
        assert!(matches!(
            auction.run(vec![bad_quality], &mut rng).unwrap_err(),
            AuctionError::InvalidParameter(_)
        ));

        let bad_ask = SubmittedBid::new(NodeId(0), Quality::new(vec![1.0]), f64::NAN);
        assert!(auction.run(vec![bad_ask], &mut rng).is_err());

        let wrong_dims = SubmittedBid::new(NodeId(0), Quality::new(vec![1.0, 2.0]), 0.1);
        assert!(matches!(
            auction.run(vec![wrong_dims], &mut rng).unwrap_err(),
            AuctionError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let zero_k = simple_auction(0);
        let mut rng = seeded_rng(5);
        assert!(matches!(
            zero_k.run(vec![bid(0, 1.0, 0.1)], &mut rng).unwrap_err(),
            AuctionError::InvalidGame { .. }
        ));
        let bad_psi = Auction::new(
            ScoringRule::new(Additive::new(vec![1.0]).unwrap()),
            1,
            SelectionRule::PsiFMore { psi: 0.0 },
            PricingRule::FirstPrice,
        );
        assert!(bad_psi.run(vec![bid(0, 1.0, 0.1)], &mut rng).is_err());
    }

    #[test]
    fn tie_break_is_random_but_deterministic_per_seed() {
        // Two identical bids: with different seeds the winner may differ, but the same seed
        // always yields the same outcome.
        let auction = simple_auction(1);
        let bids = vec![bid(0, 1.0, 0.2), bid(1, 1.0, 0.2)];
        let w1 = auction
            .run(bids.clone(), &mut seeded_rng(7))
            .unwrap()
            .winner_ids();
        let w2 = auction
            .run(bids.clone(), &mut seeded_rng(7))
            .unwrap()
            .winner_ids();
        assert_eq!(w1, w2);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32 {
            let w = auction
                .run(bids.clone(), &mut seeded_rng(seed))
                .unwrap()
                .winner_ids();
            seen.insert(w[0]);
        }
        assert_eq!(seen.len(), 2, "both tied nodes should win under some seed");
    }

    #[test]
    fn second_price_auction_pays_at_least_the_ask() {
        let auction = Auction::new(
            ScoringRule::new(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap()),
            2,
            SelectionRule::TopK,
            PricingRule::SecondPrice,
        );
        let mut rng = seeded_rng(8);
        let bids = vec![
            SubmittedBid::new(NodeId(0), Quality::new(vec![0.9, 0.9]), 3.0),
            SubmittedBid::new(NodeId(1), Quality::new(vec![0.8, 0.7]), 2.5),
            SubmittedBid::new(NodeId(2), Quality::new(vec![0.4, 0.5]), 1.0),
        ];
        let outcome = auction.run(bids, &mut rng).unwrap();
        for w in &outcome.winners {
            let ask = outcome
                .ranked
                .iter()
                .find(|b| b.node == w.node)
                .unwrap()
                .ask;
            assert!(w.payment >= ask - 1e-12);
        }
    }

    #[test]
    fn reauction_refills_from_the_standing_pool() {
        let auction = simple_auction(2);
        let mut rng = seeded_rng(11);
        let outcome = auction
            .run(
                vec![
                    bid(0, 1.0, 0.1),
                    bid(1, 0.9, 0.1),
                    bid(2, 0.8, 0.1),
                    bid(3, 0.7, 0.1),
                ],
                &mut rng,
            )
            .unwrap();
        assert_eq!(outcome.winner_ids(), vec![NodeId(0), NodeId(1)]);
        // Node 1 dropped out: recruit one replacement, excluding both original winners.
        let replacements = auction.reauction(
            &outcome.ranked,
            &[NodeId(0), NodeId(1)],
            1,
            &mut seeded_rng(12),
        );
        assert_eq!(replacements.len(), 1);
        assert_eq!(replacements[0].node, NodeId(2));
        // First-price: the replacement is paid its standing ask.
        assert!((replacements[0].payment - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reauction_handles_exhausted_pools_and_zero_quota() {
        let auction = simple_auction(1);
        let mut rng = seeded_rng(13);
        let outcome = auction
            .run(vec![bid(0, 1.0, 0.1), bid(1, 0.5, 0.2)], &mut rng)
            .unwrap();
        // Everyone excluded: nothing to award.
        assert!(auction
            .reauction(&outcome.ranked, &[NodeId(0), NodeId(1)], 3, &mut rng)
            .is_empty());
        // Zero quota: nothing to award even with a full pool.
        assert!(auction
            .reauction(&outcome.ranked, &[], 0, &mut rng)
            .is_empty());
        // Quota larger than the remaining pool: awards are capped by the pool.
        let all = auction.reauction(&outcome.ranked, &[NodeId(0)], 5, &mut rng);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].node, NodeId(1));
    }

    #[test]
    fn accessors_expose_configuration() {
        let auction = simple_auction(7);
        assert_eq!(auction.winners_per_round(), 7);
        assert_eq!(auction.selection_rule(), SelectionRule::TopK);
        assert_eq!(auction.pricing_rule(), PricingRule::FirstPrice);
        assert_eq!(auction.scoring_rule().dims(), 1);
    }
}
