//! The auction round run by the aggregator: bid collection → winner determination → payment.
//!
//! [`Auction`] bundles the broadcast scoring rule, the number of winners `K`, the selection
//! rule (FMore or ψ-FMore), and the pricing rule. [`Auction::run`] consumes the sealed bids
//! of one federated-learning round and produces an [`AuctionOutcome`] with the ranked bids,
//! the winner awards, and the aggregator's realised profit.

use crate::error::AuctionError;
use crate::pricing::PricingRule;
use crate::scoring::{ScoringFunction, ScoringRule};
use crate::store::{rank_order, BidSelector, Candidate, StandingPool, TieBreak};
use crate::types::{NodeId, Quality, ScoredBid};
use crate::winner::SelectionRule;
use rand::Rng;

/// A sealed bid `(q, p)` submitted by an edge node.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmittedBid {
    /// The bidding node.
    pub node: NodeId,
    /// Declared resource qualities.
    pub quality: Quality,
    /// Expected payment `p`.
    pub ask: f64,
}

impl SubmittedBid {
    /// Creates a sealed bid.
    pub fn new(node: NodeId, quality: Quality, ask: f64) -> Self {
        Self { node, quality, ask }
    }
}

/// The award granted to one auction winner.
#[derive(Debug, Clone, PartialEq)]
pub struct Award {
    /// The winning node.
    pub node: NodeId,
    /// The quality it committed to provide.
    pub quality: Quality,
    /// Its score `S(q, p)` under the broadcast rule.
    pub score: f64,
    /// The payment it will receive after completing local training.
    pub payment: f64,
}

/// The result of one auction round.
///
/// The fields are private and the outcome is immutable after [`AuctionOutcome::new`]: the
/// winner-id slice and total payment are computed once at construction, so per-round
/// consumers read cached values instead of rebuilding a `Vec<NodeId>` or re-summing
/// payments every time they are asked — and nothing can desynchronise the caches from the
/// award list they summarise.
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionOutcome {
    /// All bids, scored and sorted in descending score order.
    ranked: Vec<ScoredBid>,
    /// Awards for the selected winners, in selection order.
    winners: Vec<Award>,
    /// Cached winner ids, in selection order.
    winner_ids: Vec<NodeId>,
    /// Cached total payment promised to the winners.
    total_payment: f64,
}

impl AuctionOutcome {
    /// Builds an outcome, caching the winner-id slice and the total payment.
    pub fn new(ranked: Vec<ScoredBid>, winners: Vec<Award>) -> Self {
        let winner_ids = winners.iter().map(|w| w.node).collect();
        let total_payment = winners.iter().map(|w| w.payment).sum();
        Self {
            ranked,
            winners,
            winner_ids,
            total_payment,
        }
    }

    /// All bids, scored and sorted in descending score order.
    pub fn ranked(&self) -> &[ScoredBid] {
        &self.ranked
    }

    /// Awards for the selected winners, in selection order.
    pub fn winners(&self) -> &[Award] {
        &self.winners
    }

    /// Consumes the outcome, returning the ranked population (the round's standing bid
    /// pool, kept by dynamic drivers for re-auction waves).
    pub fn into_ranked(self) -> Vec<ScoredBid> {
        self.ranked
    }

    /// Node ids of the winners, in selection order (cached at construction).
    pub fn winner_ids(&self) -> &[NodeId] {
        &self.winner_ids
    }

    /// Total payment promised to the winners (cached at construction).
    pub fn total_payment(&self) -> f64 {
        self.total_payment
    }

    /// Aggregator profit `V = Σ_{i ∈ W} (U(q_i) − p_i)` under utility `U` (Eq. 6).
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::DimensionMismatch`] if `utility` expects a different number of
    /// resource dimensions than the winning bids carry.
    pub fn aggregator_profit<U: ScoringFunction>(&self, utility: &U) -> Result<f64, AuctionError> {
        let mut total = 0.0;
        for w in &self.winners {
            total += utility.evaluate(w.quality.as_slice())? - w.payment;
        }
        Ok(total)
    }

    /// Mean score of the winners (reported in Figs. 9b and 10b of the paper).
    pub fn mean_winner_score(&self) -> f64 {
        if self.winners.is_empty() {
            return 0.0;
        }
        self.winners.iter().map(|w| w.score).sum::<f64>() / self.winners.len() as f64
    }

    /// Mean payment of the winners (reported in Figs. 9b and 10b of the paper).
    pub fn mean_winner_payment(&self) -> f64 {
        if self.winners.is_empty() {
            return 0.0;
        }
        self.total_payment() / self.winners.len() as f64
    }
}

/// The rank-level admission decisions of one streamed round, produced by
/// [`Auction::plan_admission`] **before** any candidate beyond the bounded standing pool is
/// materialised: which global ranks won (in admission order) and which rank prices
/// second-score payments. Ranks are positions in the full-sort ranking of
/// [`Auction::rank_bids`] — the plan consumes exactly the RNG words the dense
/// winner-determination stage consumes, so a seeded round can be planned bounded and
/// resolved lazily with unchanged histories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionPlan {
    /// Global ranks of the winners, in admission order.
    pub picked: Vec<usize>,
    /// The best-ranked non-winner, or `None` when every offered bid won. Because scores are
    /// non-increasing in rank, this rank's score **is** the dense path's best losing score —
    /// the one value second-score pricing needs from the entire loser set. Always at most
    /// `K` (among the first `K + 1` ranks at least one is not picked), so the pricing
    /// boundary always lies within a `K + reserve` standing pool.
    pub price_rank: Option<usize>,
}

/// One multi-dimensional procurement auction with `K` winners.
#[derive(Debug, Clone)]
pub struct Auction {
    scoring: ScoringRule,
    k: usize,
    selection: SelectionRule,
    pricing: PricingRule,
}

impl Auction {
    /// Creates an auction with the broadcast scoring rule, winner count `K`, selection rule,
    /// and pricing rule.
    pub fn new(
        scoring: ScoringRule,
        k: usize,
        selection: SelectionRule,
        pricing: PricingRule,
    ) -> Self {
        Self {
            scoring,
            k,
            selection,
            pricing,
        }
    }

    /// The broadcast scoring rule (what the aggregator sends in the bid-ask step).
    pub fn scoring_rule(&self) -> &ScoringRule {
        &self.scoring
    }

    /// The number of winners `K` the aggregator recruits per round.
    pub fn winners_per_round(&self) -> usize {
        self.k
    }

    /// The selection rule in use.
    pub fn selection_rule(&self) -> SelectionRule {
        self.selection
    }

    /// The pricing rule in use.
    pub fn pricing_rule(&self) -> PricingRule {
        self.pricing
    }

    /// Scores a full bid population in one call, preserving input order.
    ///
    /// This is the batched entry point every caller should prefer over scoring bid-by-bid:
    /// validation and scoring happen in a single pass over the population.
    ///
    /// Bids with invalid quality vectors (negative or non-finite components, wrong dimension)
    /// are rejected with an error rather than silently dropped, because a malformed bid
    /// indicates a protocol violation by the submitting node.
    ///
    /// # Errors
    ///
    /// [`AuctionError::DimensionMismatch`] / [`AuctionError::InvalidParameter`] for malformed
    /// bids.
    pub fn score_bids(&self, bids: Vec<SubmittedBid>) -> Result<Vec<ScoredBid>, AuctionError> {
        let mut scored = Vec::with_capacity(bids.len());
        for bid in bids {
            if !bid.quality.is_valid() {
                return Err(AuctionError::InvalidParameter(format!(
                    "bid from {} has an invalid quality vector",
                    bid.node
                )));
            }
            if !bid.ask.is_finite() || bid.ask < 0.0 {
                return Err(AuctionError::InvalidParameter(format!(
                    "bid from {} has an invalid payment ask {}",
                    bid.node, bid.ask
                )));
            }
            let score = self.scoring.score(&bid.quality, bid.ask)?;
            scored.push(ScoredBid {
                node: bid.node,
                quality: bid.quality,
                ask: bid.ask,
                score,
            });
        }
        Ok(scored)
    }

    /// Scores and ranks a full bid population: one batched scoring pass, then a sort under
    /// the strict rank order *(score descending, tie-break key ascending)* shared with the
    /// streaming selector. Ties are still resolved "by the flip of a coin" (Section V-A) —
    /// the keys are derived from one random salt word per round ([`TieBreak`]) — but the
    /// coin is now deterministic per bid index, so a bounded streaming selection over the
    /// same population reproduces this ranking bit-for-bit without materialising it. The
    /// RNG consumption (`max(n−1, 0)` words) matches the historical shuffle exactly, so
    /// seeded histories are unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`Auction::score_bids`] failures.
    pub fn rank_bids<R: Rng + ?Sized>(
        &self,
        bids: Vec<SubmittedBid>,
        rng: &mut R,
    ) -> Result<Vec<ScoredBid>, AuctionError> {
        let scored = self.score_bids(bids)?;
        let mut tie = TieBreak::new();
        let mut keyed: Vec<(u64, ScoredBid)> = scored
            .into_iter()
            .map(|bid| (tie.next_key(rng), bid))
            .collect();
        if let Some(first) = keyed.first_mut() {
            // The salt exists once a second bid was keyed; re-key the provisional first.
            first.0 = tie.key_of(0);
        }
        tie.finish(rng);
        keyed.sort_unstable_by(|a, b| rank_order(a.1.score, a.0, b.1.score, b.0));
        Ok(keyed.into_iter().map(|(_, bid)| bid).collect())
    }

    /// Runs one auction round over the submitted sealed bids: batched scoring and ranking
    /// ([`Auction::rank_bids`]), winner selection, and payment computation.
    ///
    /// # Errors
    ///
    /// * [`AuctionError::NoBids`] when `bids` is empty,
    /// * [`AuctionError::InvalidGame`] when the auction was configured with `K = 0` or an
    ///   invalid ψ,
    /// * [`AuctionError::DimensionMismatch`] / [`AuctionError::InvalidParameter`] for
    ///   malformed bids.
    pub fn run<R: Rng + ?Sized>(
        &self,
        bids: Vec<SubmittedBid>,
        rng: &mut R,
    ) -> Result<AuctionOutcome, AuctionError> {
        if bids.is_empty() {
            return Err(AuctionError::NoBids);
        }
        if self.k == 0 || !self.selection.is_valid() {
            return Err(AuctionError::InvalidGame {
                n: bids.len(),
                k: self.k,
            });
        }

        let scored = self.rank_bids(bids, rng)?;
        let winner_indices = self.selection.select(&scored, self.k, rng);
        let best_losing_score = scored
            .iter()
            .enumerate()
            .filter(|(i, _)| !winner_indices.contains(i))
            .map(|(_, b)| b.score)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });

        let winners = winner_indices
            .iter()
            .map(|&idx| {
                let b = &scored[idx];
                let payment = self.pricing.payment_from_parts(
                    &self.scoring,
                    b.quality.as_slice(),
                    b.ask,
                    b.score,
                    best_losing_score,
                );
                Award {
                    node: b.node,
                    quality: b.quality.clone(),
                    score: b.score,
                    payment,
                }
            })
            .collect();

        Ok(AuctionOutcome::new(scored, winners))
    }

    /// A bounded streaming selector configured for this auction: it keeps the best
    /// `K + reserve` candidates of the population streamed through it (`reserve` extra
    /// standing candidates fund pricing look-back and re-auction refills). Feed it scored
    /// [`crate::store::BidStore`] shards, [`crate::store::BidSelector::finish`] it, and
    /// award winners with [`Auction::award_standing`] — bit-identical to [`Auction::run`]
    /// over the same bids for top-K selection at any `reserve`. ψ-FMore is bit-identical at
    /// any `reserve` too, via the two-pass bounded admission: plan the walk over ranks with
    /// [`Auction::plan_admission`], then resolve ranks from the pool head — or, when the
    /// walk admitted deeper than the pool, from a [`crate::store::RankRefiner`] pass (see
    /// `fmore_fl`'s streamed stage).
    pub fn selector(&self, reserve: usize) -> BidSelector {
        BidSelector::new(self.scoring.dims(), self.k.saturating_add(reserve))
    }

    /// Runs the winner-admission walk of this auction's selection rule over the ranks of a
    /// streamed round (`offered` bids total, up to `quota` winners) **without touching a
    /// single candidate** — the rank-only first half of the bounded streamed award stage,
    /// drawing exactly the RNG words [`Auction::award_standing`] draws over a full-width
    /// pool. The caller resolves the planned ranks to candidates (bounded pool head or
    /// refinement pass) and prices them with [`Auction::award_candidate`].
    pub fn plan_admission<R: Rng + ?Sized>(
        &self,
        offered: usize,
        quota: usize,
        rng: &mut R,
    ) -> AdmissionPlan {
        let picked = self.selection.select_indices(offered, quota, rng);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        // The pricing boundary: the smallest rank the walk did not admit.
        let mut price_rank = 0usize;
        for &rank in &sorted {
            if rank == price_rank {
                price_rank += 1;
            } else {
                break;
            }
        }
        AdmissionPlan {
            picked,
            price_rank: (price_rank < offered).then_some(price_rank),
        }
    }

    /// Prices and awards one standing candidate — the shared award constructor of
    /// [`Auction::award_standing`] and the bounded streamed ψ path, so both produce
    /// bit-identical awards by construction.
    pub fn award_candidate(&self, candidate: &Candidate, best_losing: Option<f64>) -> Award {
        let payment = self.pricing.payment_from_parts(
            &self.scoring,
            &candidate.quality,
            candidate.ask,
            candidate.score,
            best_losing,
        );
        Award {
            node: candidate.node,
            quality: Quality::new(candidate.quality.clone()),
            score: candidate.score,
            payment,
        }
    }

    /// Winner determination and pricing over a streamed [`StandingPool`]: selects up to
    /// `quota` winners among the standing candidates not listed in `exclude`, under the
    /// auction's own selection and pricing rules. With an empty `exclude` and
    /// `quota = K` this is the winner/payment stage of [`Auction::run`]; with exclusions it
    /// is the re-auction refill of a dynamic round, reading from the standing store without
    /// re-scoring a single bid.
    ///
    /// Second-score pricing reads the best losing score as the best standing non-winner
    /// merged with the best score the bounded selector dropped — exactly the dense value as
    /// long as every excluded node is a standing candidate (always true for prior winners,
    /// which are kept by construction).
    pub fn award_standing<R: Rng + ?Sized>(
        &self,
        pool: &StandingPool,
        quota: usize,
        exclude: &[NodeId],
        rng: &mut R,
    ) -> Vec<Award> {
        if quota == 0 {
            return Vec::new();
        }
        let avail: Vec<usize> = (0..pool.len())
            .filter(|&i| !exclude.contains(&pool.candidates()[i].node))
            .collect();
        if avail.is_empty() {
            return Vec::new();
        }
        let picked = self.selection.select_indices(avail.len(), quota, rng);
        let mut best_losing = pool.best_dropped_score();
        for (pos, &idx) in avail.iter().enumerate() {
            if picked.contains(&pos) {
                continue;
            }
            let s = pool.candidates()[idx].score;
            best_losing = Some(best_losing.map_or(s, |b| b.max(s)));
        }
        picked
            .iter()
            .map(|&pos| self.award_candidate(&pool.candidates()[avail[pos]], best_losing))
            .collect()
    }

    /// Re-runs winner determination over a **standing bid pool** — the ranked bids of a round
    /// whose winner set came up short (dropouts, departures, deadline misses in a dynamic MEC
    /// deployment).
    ///
    /// The paper's dynamic-environment discussion (§I, §VI) motivates exactly this: nodes
    /// "may join or leave anytime", so the aggregator must be able to recruit replacements
    /// without re-broadcasting the scoring rule and waiting for a fresh sealed-bid phase.
    /// Because every standing bid is already a sealed equilibrium bid for *this* round's
    /// rule, re-running selection over the not-yet-awarded remainder is incentive-neutral:
    /// no node can improve its outcome by withholding in the first phase, since the same
    /// bid competes under the same rule in every wave.
    ///
    /// `exclude` lists nodes that must not be awarded again (prior winners — including the
    /// ones that dropped out — and nodes that have since departed). Up to `quota`
    /// replacements are selected from the remaining pool under the auction's own selection
    /// and pricing rules; fewer (possibly zero) awards are returned when the pool is too
    /// small. `ranked` must be in descending score order, as produced by
    /// [`Auction::rank_bids`] / [`AuctionOutcome::ranked`].
    pub fn reauction<R: Rng + ?Sized>(
        &self,
        ranked: &[ScoredBid],
        exclude: &[NodeId],
        quota: usize,
        rng: &mut R,
    ) -> Vec<Award> {
        if quota == 0 {
            return Vec::new();
        }
        // Index into the standing bids instead of cloning the eligible remainder: a refill
        // wave reads the pool, it does not rebuild it.
        let avail: Vec<usize> = (0..ranked.len())
            .filter(|&i| !exclude.contains(&ranked[i].node))
            .collect();
        if avail.is_empty() {
            return Vec::new();
        }
        let picked = self.selection.select_indices(avail.len(), quota, rng);
        let best_losing_score = avail
            .iter()
            .enumerate()
            .filter(|(pos, _)| !picked.contains(pos))
            .map(|(_, &idx)| ranked[idx].score)
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            });
        picked
            .iter()
            .map(|&pos| {
                let b = &ranked[avail[pos]];
                let payment = self.pricing.payment_from_parts(
                    &self.scoring,
                    b.quality.as_slice(),
                    b.ask,
                    b.score,
                    best_losing_score,
                );
                Award {
                    node: b.node,
                    quality: b.quality.clone(),
                    score: b.score,
                    payment,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{Additive, CobbDouglas};
    use fmore_numerics::seeded_rng;

    fn simple_auction(k: usize) -> Auction {
        Auction::new(
            ScoringRule::new(Additive::new(vec![1.0]).unwrap()),
            k,
            SelectionRule::TopK,
            PricingRule::FirstPrice,
        )
    }

    fn bid(node: u64, q: f64, ask: f64) -> SubmittedBid {
        SubmittedBid::new(NodeId(node), Quality::new(vec![q]), ask)
    }

    #[test]
    fn selects_top_k_by_score() {
        let auction = simple_auction(2);
        let mut rng = seeded_rng(1);
        let outcome = auction
            .run(
                vec![
                    bid(0, 1.0, 0.5),
                    bid(1, 1.0, 0.1),
                    bid(2, 0.9, 0.2),
                    bid(3, 0.2, 0.0),
                ],
                &mut rng,
            )
            .unwrap();
        assert_eq!(outcome.winner_ids(), vec![NodeId(1), NodeId(2)]);
        assert_eq!(outcome.ranked().len(), 4);
        assert!((outcome.total_payment() - 0.3).abs() < 1e-12);
        assert!((outcome.mean_winner_payment() - 0.15).abs() < 1e-12);
        assert!(outcome.mean_winner_score() > 0.0);
    }

    #[test]
    fn aggregator_profit_uses_utility_minus_payment() {
        let auction = simple_auction(2);
        let mut rng = seeded_rng(2);
        let outcome = auction
            .run(
                vec![bid(0, 1.0, 0.1), bid(1, 0.8, 0.2), bid(2, 0.5, 0.1)],
                &mut rng,
            )
            .unwrap();
        let utility = Additive::new(vec![1.0]).unwrap();
        let profit = outcome.aggregator_profit(&utility).unwrap();
        // Winners: node 0 (1.0 - 0.1) and node 1 (0.8 - 0.2) => profit 1.5.
        assert!((profit - 1.5).abs() < 1e-12);
        // Wrong-dimension utility is rejected.
        let bad = Additive::new(vec![1.0, 1.0]).unwrap();
        assert!(outcome.aggregator_profit(&bad).is_err());
    }

    #[test]
    fn k_larger_than_population_awards_everyone() {
        let auction = simple_auction(10);
        let mut rng = seeded_rng(3);
        let outcome = auction
            .run(vec![bid(0, 1.0, 0.1), bid(1, 0.5, 0.1)], &mut rng)
            .unwrap();
        assert_eq!(outcome.winners().len(), 2);
    }

    #[test]
    fn rejects_empty_and_malformed_input() {
        let auction = simple_auction(2);
        let mut rng = seeded_rng(4);
        assert_eq!(
            auction.run(vec![], &mut rng).unwrap_err(),
            AuctionError::NoBids
        );

        let bad_quality = SubmittedBid::new(NodeId(0), Quality::new(vec![-1.0]), 0.1);
        assert!(matches!(
            auction.run(vec![bad_quality], &mut rng).unwrap_err(),
            AuctionError::InvalidParameter(_)
        ));

        let bad_ask = SubmittedBid::new(NodeId(0), Quality::new(vec![1.0]), f64::NAN);
        assert!(auction.run(vec![bad_ask], &mut rng).is_err());

        let wrong_dims = SubmittedBid::new(NodeId(0), Quality::new(vec![1.0, 2.0]), 0.1);
        assert!(matches!(
            auction.run(vec![wrong_dims], &mut rng).unwrap_err(),
            AuctionError::DimensionMismatch { .. }
        ));
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        let zero_k = simple_auction(0);
        let mut rng = seeded_rng(5);
        assert!(matches!(
            zero_k.run(vec![bid(0, 1.0, 0.1)], &mut rng).unwrap_err(),
            AuctionError::InvalidGame { .. }
        ));
        let bad_psi = Auction::new(
            ScoringRule::new(Additive::new(vec![1.0]).unwrap()),
            1,
            SelectionRule::PsiFMore { psi: 0.0 },
            PricingRule::FirstPrice,
        );
        assert!(bad_psi.run(vec![bid(0, 1.0, 0.1)], &mut rng).is_err());
    }

    #[test]
    fn tie_break_is_random_but_deterministic_per_seed() {
        // Two identical bids: with different seeds the winner may differ, but the same seed
        // always yields the same outcome.
        let auction = simple_auction(1);
        let bids = vec![bid(0, 1.0, 0.2), bid(1, 1.0, 0.2)];
        let w1 = auction
            .run(bids.clone(), &mut seeded_rng(7))
            .unwrap()
            .winner_ids()
            .to_vec();
        let w2 = auction
            .run(bids.clone(), &mut seeded_rng(7))
            .unwrap()
            .winner_ids()
            .to_vec();
        assert_eq!(w1, w2);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..32 {
            let w = auction
                .run(bids.clone(), &mut seeded_rng(seed))
                .unwrap()
                .winner_ids()
                .to_vec();
            seen.insert(w[0]);
        }
        assert_eq!(seen.len(), 2, "both tied nodes should win under some seed");
    }

    #[test]
    fn second_price_auction_pays_at_least_the_ask() {
        let auction = Auction::new(
            ScoringRule::new(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap()),
            2,
            SelectionRule::TopK,
            PricingRule::SecondPrice,
        );
        let mut rng = seeded_rng(8);
        let bids = vec![
            SubmittedBid::new(NodeId(0), Quality::new(vec![0.9, 0.9]), 3.0),
            SubmittedBid::new(NodeId(1), Quality::new(vec![0.8, 0.7]), 2.5),
            SubmittedBid::new(NodeId(2), Quality::new(vec![0.4, 0.5]), 1.0),
        ];
        let outcome = auction.run(bids, &mut rng).unwrap();
        for w in outcome.winners() {
            let ask = outcome
                .ranked
                .iter()
                .find(|b| b.node == w.node)
                .unwrap()
                .ask;
            assert!(w.payment >= ask - 1e-12);
        }
    }

    #[test]
    fn reauction_refills_from_the_standing_pool() {
        let auction = simple_auction(2);
        let mut rng = seeded_rng(11);
        let outcome = auction
            .run(
                vec![
                    bid(0, 1.0, 0.1),
                    bid(1, 0.9, 0.1),
                    bid(2, 0.8, 0.1),
                    bid(3, 0.7, 0.1),
                ],
                &mut rng,
            )
            .unwrap();
        assert_eq!(outcome.winner_ids(), vec![NodeId(0), NodeId(1)]);
        // Node 1 dropped out: recruit one replacement, excluding both original winners.
        let replacements = auction.reauction(
            outcome.ranked(),
            &[NodeId(0), NodeId(1)],
            1,
            &mut seeded_rng(12),
        );
        assert_eq!(replacements.len(), 1);
        assert_eq!(replacements[0].node, NodeId(2));
        // First-price: the replacement is paid its standing ask.
        assert!((replacements[0].payment - 0.1).abs() < 1e-12);
    }

    #[test]
    fn reauction_handles_exhausted_pools_and_zero_quota() {
        let auction = simple_auction(1);
        let mut rng = seeded_rng(13);
        let outcome = auction
            .run(vec![bid(0, 1.0, 0.1), bid(1, 0.5, 0.2)], &mut rng)
            .unwrap();
        // Everyone excluded: nothing to award.
        assert!(auction
            .reauction(outcome.ranked(), &[NodeId(0), NodeId(1)], 3, &mut rng)
            .is_empty());
        // Zero quota: nothing to award even with a full pool.
        assert!(auction
            .reauction(outcome.ranked(), &[], 0, &mut rng)
            .is_empty());
        // Quota larger than the remaining pool: awards are capped by the pool.
        let all = auction.reauction(outcome.ranked(), &[NodeId(0)], 5, &mut rng);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].node, NodeId(1));
    }

    #[test]
    fn accessors_expose_configuration() {
        let auction = simple_auction(7);
        assert_eq!(auction.winners_per_round(), 7);
        assert_eq!(auction.selection_rule(), SelectionRule::TopK);
        assert_eq!(auction.pricing_rule(), PricingRule::FirstPrice);
        assert_eq!(auction.scoring_rule().dims(), 1);
    }
}
