//! The population-scale bid path: a columnar bid store, deterministic tie-break keys, and a
//! bounded streaming top-K selector.
//!
//! The dense path of [`crate::mechanism::Auction::run`] materialises every submitted bid,
//! scores them, and full-sorts the population — fine for the paper's toy sizes (tens of
//! nodes), hopeless for the MEC populations the mechanism is actually pitched at (related
//! work frames winner determination at 10⁵–10⁶ bidders). This module holds the pieces that
//! make a million-bidder round routine:
//!
//! * [`BidStore`] — a struct-of-arrays bid buffer (flattened quality dims, asks, node ids,
//!   scores). One shard-sized store is filled, scored in one pass, fed to the selector, and
//!   reused for the next shard, so the resident bid bytes of a round are `O(shard)`, not
//!   `O(N)`.
//! * [`TieBreak`] — the deterministic tie-break keys that replace the historical
//!   shuffle-before-sort. Ranking is the strict total order *(score descending, key
//!   ascending)*; keys are derived per bid index from one salt word, so any two bids compare
//!   the same way no matter how the population was sharded. The generator consumes **exactly
//!   `max(n−1, 0)` RNG words per round** — the same count the Fisher–Yates shuffle used —
//!   so every seeded history recorded before the dense→streaming migration replays
//!   bit-for-bit.
//! * [`BidSelector`] — a bounded worst-first heap keeping the best `K + reserve` candidates
//!   seen so far (plus the best dropped score, which is all pricing needs from the losers).
//!   Offering a bid that does not beat the current worst allocates nothing; offering a
//!   better one reuses the evicted candidate's quality buffer. Transient memory is
//!   `O(K + reserve)` regardless of `N`.
//! * [`StandingPool`] — the selector's output: the kept candidates in rank order, valid as
//!   the round's standing store for re-auction refills without re-scoring
//!   ([`crate::mechanism::Auction::award_standing`]).
//!
//! The streaming selection is pinned **bit-identical** to the full-sort
//! [`crate::mechanism::Auction::rank_bids`] path (same keys, same order, same selection
//! draws, same payments) by `tests/properties.rs` — for plain top-K at any `reserve`, and
//! for ψ-FMore through the two-pass bounded admission built from [`ScoreHistogram`] and
//! [`RankRefiner`]: the first streaming pass counts every score into a fixed-width
//! histogram, the ψ admission walk runs over *ranks* alone
//! ([`crate::mechanism::Auction::plan_admission`]), and — only when an admitted rank falls
//! beyond the bounded pool — a refinement pass re-streams the population to materialise
//! exactly the admitted ranks (plus the pricing boundary) with their full-sort tie-break
//! keys. State is `O(width·shard + K + bins)`, never `O(N)`.

use crate::error::AuctionError;
use crate::scoring::ScoringRule;
use crate::types::NodeId;
use fmore_numerics::rng::derive_seed;
use rand::Rng;
use std::cmp::Ordering;

/// The strict rank order of the aggregator: descending score, ties by ascending tie-break
/// key. Keys are distinct per round (a bijection of the bid index), so the order is total —
/// two independent rankings of the same population can never disagree.
pub fn rank_order(score_a: f64, key_a: u64, score_b: f64, key_b: u64) -> Ordering {
    match score_b.partial_cmp(&score_a) {
        Some(Ordering::Equal) | None => key_a.cmp(&key_b),
        Some(order) => order,
    }
}

/// Deterministic tie-break key stream for one auction round.
///
/// The `i`-th offered bid gets the key `derive_seed(salt, i)` (the workspace's SplitMix64
/// stream derivation) where `salt` is a single word drawn from the round RNG. The
/// derivation is a bijection of `i` for a fixed salt, so keys are pairwise distinct within
/// a round; because the key depends only on `(salt, i)`, the ranking is independent of how
/// the population was sharded or on which thread a shard was scored.
///
/// # RNG contract
///
/// Exactly `max(n−1, 0)` words are consumed per round, matching the Fisher–Yates shuffle
/// this replaces: the salt is drawn on the **second** [`TieBreak::next_key`] call (a
/// single-bid round consumes nothing) and [`TieBreak::finish`] burns the remaining `n−2`.
/// Seeded experiment histories recorded under the shuffle therefore replay bit-for-bit —
/// the ψ-participation draws and every later consumer of the round RNG see an unchanged
/// stream position.
#[derive(Debug, Clone, Default)]
pub struct TieBreak {
    salt: Option<u64>,
    count: usize,
}

impl TieBreak {
    /// A fresh key stream for one round.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys handed out so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The key of the `i`-th offered bid (0 until the salt exists — callers re-key bid 0
    /// once a second bid arrives; a single-bid round never compares keys).
    pub fn key_of(&self, i: usize) -> u64 {
        match self.salt {
            Some(salt) => derive_seed(salt, i as u64),
            None => 0,
        }
    }

    /// Returns the key for the next offered bid, drawing the round salt on the second call.
    pub fn next_key<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let i = self.count;
        self.count += 1;
        if i == 1 && self.salt.is_none() {
            self.salt = Some(rng.gen::<u64>());
        }
        self.key_of(i)
    }

    /// Draws the round salt now (if not yet drawn) and returns it, so that keys can be
    /// computed **off-thread** from `(salt, position)` by the parallel selection waves.
    ///
    /// Consumes the same single RNG word the second [`TieBreak::next_key`] call would have
    /// drawn, so the stream position is unchanged — but callers must only force the salt
    /// when the round is guaranteed to offer at least two bids in total, or the
    /// `max(n−1, 0)`-word contract above would be violated.
    pub fn force_salt<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        if self.salt.is_none() {
            self.salt = Some(rng.gen::<u64>());
        }
        self.salt.expect("salt just ensured")
    }

    /// Whether the round salt has been drawn yet.
    pub fn salt_known(&self) -> bool {
        self.salt.is_some()
    }

    /// Advances the offered-bid counter past `n` externally keyed bids (bids whose keys
    /// were computed on worker threads from a forced salt and absorbed wholesale), keeping
    /// [`TieBreak::finish`]'s burn count — and therefore the RNG contract — exact.
    pub fn advance(&mut self, n: usize) {
        self.count += n;
    }

    /// Burns the remainder of the round's RNG budget (`n−2` words for `n ≥ 2`), pinning the
    /// stream position to what the historical shuffle consumed. Call exactly once, after the
    /// last bid of the round.
    pub fn finish<R: Rng + ?Sized>(&self, rng: &mut R) {
        for _ in 0..self.count.saturating_sub(2) {
            let _ = rng.gen::<u64>();
        }
    }
}

/// A columnar (struct-of-arrays) bid buffer: node ids, flattened quality dimensions, asks,
/// and scores live in four dense arrays instead of one `Vec<SubmittedBid>` of heap-owning
/// structs. A shard-sized store is reused across shards and rounds, so steady-state bid
/// collection allocates nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BidStore {
    dims: usize,
    nodes: Vec<u64>,
    qualities: Vec<f64>,
    asks: Vec<f64>,
    scores: Vec<f64>,
}

impl BidStore {
    /// An empty store for `dims`-dimensional bids.
    pub fn with_dims(dims: usize) -> Self {
        Self {
            dims,
            ..Self::default()
        }
    }

    /// An empty store with capacity for `bids` bids (one allocation up front).
    pub fn with_capacity(dims: usize, bids: usize) -> Self {
        Self {
            dims,
            nodes: Vec::with_capacity(bids),
            qualities: Vec::with_capacity(bids * dims),
            asks: Vec::with_capacity(bids),
            scores: Vec::with_capacity(bids),
        }
    }

    /// Number of resource dimensions per bid.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of stored bids.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the store, keeping every column's capacity for reuse.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.qualities.clear();
        self.asks.clear();
        self.scores.clear();
    }

    /// Appends one sealed bid after validating it (same rules as the dense
    /// [`crate::mechanism::Auction::score_bids`]: finite non-negative quality of the right
    /// dimension, finite non-negative ask).
    ///
    /// # Errors
    ///
    /// [`AuctionError::DimensionMismatch`] / [`AuctionError::InvalidParameter`] for
    /// malformed bids.
    pub fn push(&mut self, node: NodeId, quality: &[f64], ask: f64) -> Result<(), AuctionError> {
        if quality.len() != self.dims {
            return Err(AuctionError::DimensionMismatch {
                expected: self.dims,
                actual: quality.len(),
            });
        }
        if quality.iter().any(|v| !v.is_finite() || *v < 0.0) {
            return Err(AuctionError::InvalidParameter(format!(
                "bid from {node} has an invalid quality vector"
            )));
        }
        if !ask.is_finite() || ask < 0.0 {
            return Err(AuctionError::InvalidParameter(format!(
                "bid from {node} has an invalid payment ask {ask}"
            )));
        }
        self.nodes.push(node.0);
        self.qualities.extend_from_slice(quality);
        self.asks.push(ask);
        self.scores.push(0.0);
        Ok(())
    }

    /// Appends one bid the caller guarantees is well-formed — right dimension, finite
    /// non-negative quality components, finite non-negative ask — skipping the per-component
    /// validation of [`BidStore::push`]. The trusted fast path of the population-scale
    /// filler, whose bids come from the solver's tabulated equilibrium (clipped to a finite
    /// non-negative capacity) rather than from untrusted submitters; at 10⁶ bids per round
    /// the validation sweep is a measurable slice of the bid-generation budget. Debug builds
    /// still assert every invariant.
    #[inline(always)]
    pub fn push_trusted(&mut self, node: NodeId, quality: &[f64], ask: f64) {
        debug_assert_eq!(quality.len(), self.dims);
        debug_assert!(quality.iter().all(|v| v.is_finite() && *v >= 0.0));
        debug_assert!(ask.is_finite() && ask >= 0.0);
        self.nodes.push(node.0);
        self.qualities.extend_from_slice(quality);
        self.asks.push(ask);
        self.scores.push(0.0);
    }

    /// Streaming twin of [`BidStore::push_trusted`]: `fill` writes exactly `dims` quality
    /// components **directly onto the store's quality column** and returns the ask, so the
    /// bid never round-trips through a caller-side scratch buffer. The per-bid contract of
    /// the population-scale loop: one closure call, zero copies.
    ///
    /// `fill` must append exactly `dims` elements on success and nothing on error (the
    /// solver's `tabulated_bid_append` honours this: its checks precede its writes); both
    /// obligations are debug-asserted.
    ///
    /// # Errors
    ///
    /// Propagates `fill`'s error, leaving the store unchanged.
    #[inline(always)]
    pub fn push_trusted_with<E>(
        &mut self,
        node: NodeId,
        fill: impl FnOnce(&mut Vec<f64>) -> Result<f64, E>,
    ) -> Result<(), E> {
        #[cfg(debug_assertions)]
        let written_from = self.qualities.len();
        let ask = fill(&mut self.qualities)?;
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(self.qualities.len(), written_from + self.dims);
            debug_assert!(self.qualities[written_from..]
                .iter()
                .all(|v| v.is_finite() && *v >= 0.0));
            debug_assert!(ask.is_finite() && ask >= 0.0);
        }
        self.nodes.push(node.0);
        self.asks.push(ask);
        self.scores.push(0.0);
        Ok(())
    }

    /// The `i`-th bidder.
    #[inline]
    pub fn node(&self, i: usize) -> NodeId {
        NodeId(self.nodes[i])
    }

    /// The `i`-th quality vector.
    #[inline]
    pub fn quality(&self, i: usize) -> &[f64] {
        &self.qualities[i * self.dims..(i + 1) * self.dims]
    }

    /// The `i`-th payment ask.
    #[inline]
    pub fn ask(&self, i: usize) -> f64 {
        self.asks[i]
    }

    /// The `i`-th score (0 until [`BidStore::score_with`] ran).
    #[inline]
    pub fn score(&self, i: usize) -> f64 {
        self.scores[i]
    }

    /// Scores every stored bid in one pass under the broadcast rule
    /// (`S(q, p) = s(q) − p`), filling the score column via the scoring family's columnar
    /// [`crate::scoring::ScoringFunction::score_batch`] kernel — one virtual dispatch per
    /// store, a monomorphized sweep over the SoA arrays inside. Pure — safe to run
    /// shard-by-shard on worker threads.
    ///
    /// # Errors
    ///
    /// [`AuctionError::DimensionMismatch`] when the rule expects a different dimension than
    /// the store holds.
    pub fn score_with(&mut self, rule: &ScoringRule) -> Result<(), AuctionError> {
        if self.dims != rule.dims() {
            return Err(AuctionError::DimensionMismatch {
                expected: rule.dims(),
                actual: self.dims,
            });
        }
        rule.score_batch(&self.qualities, &self.asks, &mut self.scores)
    }

    /// Revises the bids pushed at index `start` onwards, in push order: `revise` receives
    /// each bid's node, mutable quality row, and mutable ask, and returns whether the bid
    /// stays in the store. Returning `false` removes the bid (the tail is compacted in
    /// place, preserving order). Returns how many bids were removed.
    ///
    /// This is the post-fill hook of reputation-aware selection and adversarial bid
    /// distortion: a streamed shard is filled by its (possibly untruthful) source, then the
    /// auctioneer-side policy reweighs or excludes bids *before* scoring. The closure must
    /// keep every kept bid well-formed (finite, non-negative quality and ask) — debug
    /// builds assert it.
    pub fn revise_from(
        &mut self,
        start: usize,
        mut revise: impl FnMut(NodeId, &mut [f64], &mut f64) -> bool,
    ) -> usize {
        let dims = self.dims;
        let len = self.nodes.len();
        let mut write = start;
        for read in start..len {
            let mut ask = self.asks[read];
            let keep = revise(
                NodeId(self.nodes[read]),
                &mut self.qualities[read * dims..(read + 1) * dims],
                &mut ask,
            );
            if keep {
                debug_assert!(
                    self.qualities[read * dims..(read + 1) * dims]
                        .iter()
                        .all(|v| v.is_finite() && *v >= 0.0),
                    "revised quality must stay well-formed"
                );
                debug_assert!(
                    ask.is_finite() && ask >= 0.0,
                    "revised ask must stay well-formed"
                );
                self.asks[write] = ask;
                if write != read {
                    self.nodes[write] = self.nodes[read];
                    self.scores[write] = self.scores[read];
                    self.qualities
                        .copy_within(read * dims..(read + 1) * dims, write * dims);
                }
                write += 1;
            }
        }
        self.nodes.truncate(write);
        self.asks.truncate(write);
        self.scores.truncate(write);
        self.qualities.truncate(write * dims);
        len - write
    }

    /// Resident bytes of the stored bids (column lengths, not capacities — deterministic
    /// across allocators, which lets the scale experiments fingerprint it).
    pub fn resident_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<u64>()
            + (self.qualities.len() + self.asks.len() + self.scores.len())
                * std::mem::size_of::<f64>()
    }
}

/// One kept candidate of a streaming selection: everything pricing and award construction
/// need, and nothing else.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The bidder.
    pub node: NodeId,
    /// Score under the broadcast rule.
    pub score: f64,
    /// Deterministic tie-break key (see [`TieBreak`]).
    pub key: u64,
    /// Payment ask.
    pub ask: f64,
    /// Declared quality (owned copy; only kept candidates hold one).
    pub quality: Vec<f64>,
}

impl Candidate {
    fn ranks_before(&self, other: &Candidate) -> bool {
        rank_order(self.score, self.key, other.score, other.key) == Ordering::Less
    }
}

/// The bounded worst-first candidate heap shared by the round selector and the per-shard
/// local selections: keeps the `capacity` best candidates offered so far plus the best
/// score among everything it dropped. Pure data structure — no RNG, no key generation —
/// so it runs identically on the control thread and on pool workers.
#[derive(Debug, Clone)]
struct CandidateHeap {
    dims: usize,
    capacity: usize,
    /// Worst-first heap: `heap[0]` is the weakest kept candidate.
    heap: Vec<Candidate>,
    best_dropped: Option<f64>,
}

impl CandidateHeap {
    fn new(dims: usize, capacity: usize) -> Self {
        Self {
            dims,
            capacity: capacity.max(1),
            heap: Vec::new(),
            best_dropped: None,
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    /// Offers one scored, already-keyed bid; a bid that does not beat the weakest kept
    /// candidate only updates the best-dropped score.
    fn offer_keyed(&mut self, node: NodeId, quality: &[f64], ask: f64, score: f64, key: u64) {
        debug_assert_eq!(quality.len(), self.dims);
        if self.heap.len() < self.capacity {
            self.heap.push(Candidate {
                node,
                score,
                key,
                ask,
                quality: quality.to_vec(),
            });
            self.sift_up(self.heap.len() - 1);
            return;
        }
        let weakest = &self.heap[0];
        if rank_order(score, key, weakest.score, weakest.key) == Ordering::Less {
            // The newcomer ranks before the weakest kept candidate: evict it, reusing its
            // quality buffer so steady-state offers allocate nothing.
            self.note_dropped(self.heap[0].score);
            let slot = &mut self.heap[0];
            slot.node = node;
            slot.score = score;
            slot.key = key;
            slot.ask = ask;
            slot.quality.clear();
            slot.quality.extend_from_slice(quality);
            self.sift_down(0);
        } else {
            self.note_dropped(score);
        }
    }

    /// Move-based twin of [`CandidateHeap::offer_keyed`] for absorbing candidates that
    /// already own their quality buffer (the per-shard local selections).
    fn offer_candidate(&mut self, candidate: Candidate) {
        debug_assert_eq!(candidate.quality.len(), self.dims);
        if self.heap.len() < self.capacity {
            self.heap.push(candidate);
            self.sift_up(self.heap.len() - 1);
            return;
        }
        let weakest = &self.heap[0];
        if candidate.ranks_before(weakest) {
            self.note_dropped(self.heap[0].score);
            self.heap[0] = candidate;
            self.sift_down(0);
        } else {
            self.note_dropped(candidate.score);
        }
    }

    fn note_dropped(&mut self, score: f64) {
        self.best_dropped = Some(match self.best_dropped {
            Some(best) => best.max(score),
            None => score,
        });
    }

    /// `true` when `a` should sit above `b` in the worst-first heap (i.e. `a` ranks after).
    fn heap_before(a: &Candidate, b: &Candidate) -> bool {
        b.ranks_before(a)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::heap_before(&self.heap[i], &self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut top = i;
            if l < self.heap.len() && Self::heap_before(&self.heap[l], &self.heap[top]) {
                top = l;
            }
            if r < self.heap.len() && Self::heap_before(&self.heap[r], &self.heap[top]) {
                top = r;
            }
            if top == i {
                break;
            }
            self.heap.swap(i, top);
            i = top;
        }
    }
}

/// The outcome of one shard's **local** top-K selection, computed on a worker thread with
/// no RNG access: the shard's surviving candidates (heap order — the merge does not care),
/// the best score the shard dropped, and how many bids it offered.
///
/// A bid dropped by its shard's local heap can never appear in the round's global top
/// `capacity` (global top ∩ shard ⊆ local top at equal capacity), so absorbing only the
/// survivors into the round selector ([`BidSelector::absorb`]) loses nothing — and because
/// every candidate carries its *global* tie-break key, the merged result is bit-identical
/// to offering every bid sequentially, in any wave composition.
#[derive(Debug, Clone)]
pub struct ShardSelection {
    candidates: Vec<Candidate>,
    best_dropped: Option<f64>,
    offered: usize,
}

impl ShardSelection {
    /// Runs the local top-`capacity` selection over a scored store. Candidate `j` gets the
    /// deterministic global key `derive_seed(salt, base + j)` — exactly the key the dense
    /// path assigns at stream position `base + j` — where `salt` is the round salt
    /// ([`TieBreak::force_salt`] / [`BidSelector::force_salt`]) and `base` is the number of
    /// bids streamed before this shard.
    pub fn select(store: &BidStore, salt: u64, base: usize, capacity: usize) -> Self {
        let dims = store.dims();
        let mut heap = CandidateHeap::new(dims, capacity);
        // Column sweep with a cached weakest-kept rank: once the heap is full, the common
        // case by far is a bid that loses to the weakest kept candidate, and that verdict
        // needs only the score/key pair — so decide it from the dense columns alone,
        // without building the quality slice or walking into the heap. The recorded
        // outcome (`note_dropped(score)`) is exactly what `offer_keyed` does on the reject
        // path, so the selection stays bit-identical to the naive per-index loop.
        let mut weakest: Option<(f64, u64)> = None;
        for j in 0..store.len() {
            let score = store.scores[j];
            let key = derive_seed(salt, (base + j) as u64);
            if let Some((w_score, w_key)) = weakest {
                if rank_order(score, key, w_score, w_key) != Ordering::Less {
                    heap.note_dropped(score);
                    continue;
                }
            }
            heap.offer_keyed(
                NodeId(store.nodes[j]),
                &store.qualities[j * dims..(j + 1) * dims],
                store.asks[j],
                score,
                key,
            );
            if heap.len() == heap.capacity {
                weakest = Some((heap.heap[0].score, heap.heap[0].key));
            }
        }
        Self {
            candidates: heap.heap,
            best_dropped: heap.best_dropped,
            offered: store.len(),
        }
    }

    /// Number of bids the shard offered to its local heap.
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Number of surviving candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the shard kept nothing.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// A bounded streaming top-K selector: keeps the `capacity` best candidates seen so far in a
/// worst-first binary heap, plus the best score among everything it dropped (which is all
/// the pricing rules need from the losers). Feeding the whole population through it and
/// sorting the kept set reproduces the head of the dense full-sort ranking bit-for-bit.
///
/// Two equivalent feeding disciplines exist: the sequential [`BidSelector::offer`] /
/// [`BidSelector::offer_store`] path (keys drawn from the round RNG as bids arrive), and
/// the parallel-wave path — [`BidSelector::force_salt`] once, [`ShardSelection::select`]
/// per shard on worker threads, then [`BidSelector::absorb`] in population order. Both
/// consume the same RNG words and produce the same pool, bit for bit.
#[derive(Debug, Clone)]
pub struct BidSelector {
    tie: TieBreak,
    heap: CandidateHeap,
}

impl BidSelector {
    /// A selector keeping the best `capacity` of the `dims`-dimensional bids offered to it.
    pub fn new(dims: usize, capacity: usize) -> Self {
        Self {
            tie: TieBreak::new(),
            heap: CandidateHeap::new(dims, capacity),
        }
    }

    /// Number of bids offered so far.
    pub fn offered(&self) -> usize {
        self.tie.count()
    }

    /// Number of candidates currently kept.
    pub fn kept(&self) -> usize {
        self.heap.len()
    }

    /// The bound on kept candidates (`K + reserve` as configured by
    /// [`crate::mechanism::Auction::selector`]).
    pub fn capacity(&self) -> usize {
        self.heap.capacity
    }

    /// Resident bytes of the kept candidates (len-based, deterministic).
    pub fn resident_bytes(&self) -> usize {
        self.heap.len()
            * (std::mem::size_of::<Candidate>() + self.heap.dims * std::mem::size_of::<f64>())
    }

    /// Offers one scored bid. Draws exactly one tie-break key from the round stream (see
    /// [`TieBreak`] for the RNG contract); a bid that does not beat the weakest kept
    /// candidate only updates the best-dropped score.
    pub fn offer<R: Rng + ?Sized>(
        &mut self,
        node: NodeId,
        quality: &[f64],
        ask: f64,
        score: f64,
        rng: &mut R,
    ) {
        let seq = self.tie.count();
        let key = self.tie.next_key(rng);
        if seq == 1 {
            // The salt now exists: re-key the provisional first candidate (if still kept).
            self.rekey_provisional_first();
        }
        self.heap.offer_keyed(node, quality, ask, score, key);
    }

    /// Offers every bid of a scored store, in store order.
    pub fn offer_store<R: Rng + ?Sized>(&mut self, store: &BidStore, rng: &mut R) {
        debug_assert_eq!(store.dims(), self.heap.dims);
        for i in 0..store.len() {
            self.offer(
                store.node(i),
                store.quality(i),
                store.ask(i),
                store.score(i),
                rng,
            );
        }
    }

    /// Draws the round salt now and returns it, so shard selections can compute keys on
    /// worker threads. Re-keys the provisional first candidate if one is already kept.
    /// Callers must guarantee the round offers at least two bids in total (the RNG
    /// contract of [`TieBreak::force_salt`]).
    pub fn force_salt<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        let salt = self.tie.force_salt(rng);
        if self.tie.count() == 1 {
            // Exactly one bid was offered sequentially before the salt existed; it holds
            // the provisional key 0. (With ≥ 2 sequential offers the salt already existed
            // and every kept key is final — re-keying would corrupt the heap.)
            self.rekey_provisional_first();
        }
        salt
    }

    /// Gives the kept provisional first candidate (at most one exists when this is
    /// called) its true key for stream position 0.
    fn rekey_provisional_first(&mut self) {
        if let Some(first) = self.heap.heap.first_mut() {
            first.key = self.tie.key_of(0);
        }
    }

    /// Merges one shard's local selection into the round selector: advances the offered
    /// count, folds in the shard's best-dropped score, and offers every surviving
    /// candidate (already carrying its global key) to the heap.
    ///
    /// Shards must be absorbed in population order with bases equal to the cumulative
    /// offered count at their start — the discipline the engine's wave loop maintains;
    /// under it the result is bit-identical to the sequential path.
    pub fn absorb(&mut self, shard: ShardSelection) {
        debug_assert!(
            self.tie.salt_known() || shard.offered == 0,
            "absorb requires a forced salt"
        );
        self.tie.advance(shard.offered);
        if let Some(score) = shard.best_dropped {
            self.heap.note_dropped(score);
        }
        for candidate in shard.candidates {
            self.heap.offer_candidate(candidate);
        }
    }

    /// Ends the round: burns the tie-break stream's remaining RNG budget (so downstream
    /// consumers see the historical stream position) and returns the kept candidates in
    /// rank order as the round's standing pool.
    pub fn finish<R: Rng + ?Sized>(self, rng: &mut R) -> StandingPool {
        self.tie.finish(rng);
        let offered = self.tie.count();
        let mut candidates = self.heap.heap;
        candidates.sort_unstable_by(|a, b| rank_order(a.score, a.key, b.score, b.key));
        StandingPool {
            candidates,
            offered,
            best_dropped: self.heap.best_dropped,
        }
    }
}

/// The standing bid store of one round: the kept candidates in rank order (best first) plus
/// the best score the bounded selector dropped. Winner selection, pricing, and re-auction
/// refills all read from here without re-scoring
/// ([`crate::mechanism::Auction::award_standing`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StandingPool {
    candidates: Vec<Candidate>,
    offered: usize,
    best_dropped: Option<f64>,
}

impl StandingPool {
    /// The kept candidates, best rank first.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Number of kept candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether nothing was kept.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Total number of bids offered to the selector this round.
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Best score among the bids the bounded selector dropped, if any were dropped.
    pub fn best_dropped_score(&self) -> Option<f64> {
        self.best_dropped
    }
}

/// A fixed-width score histogram: the rank-locating backbone of the bounded ψ-FMore
/// streamed admission.
///
/// The first streaming pass counts every scored bid into one of 2¹⁶ bins, keyed by the top
/// 16 bits of an order-preserving integer image of the score (higher bin index ⇔ higher
/// score; exactly equal scores always share a bin, so the strict rank order within a bin is
/// decided purely by [`rank_order`] over the bin's members). After the pass, the global
/// rank interval of every bin is known: bin `b` holds ranks
/// `[Σ_{b' > b} count(b'), Σ_{b' ≥ b} count(b'))`. That is enough to translate the ranks an
/// admission walk picks into *(bin, within-bin offset)* coordinates without ever holding
/// the population — the job of [`RankRefiner`].
///
/// The histogram is `BINS` words of constant state (512 KiB) regardless of the population
/// size, consumes no RNG, and is deterministic in the bid stream (counting is order- and
/// shard-independent). `-0.0` is canonicalised to `+0.0` so the binning never splits a pair
/// of scores that [`rank_order`] treats as equal. Scores must be finite — the bid
/// validation of [`BidStore::push`] guarantees it.
#[derive(Debug, Clone)]
pub struct ScoreHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for ScoreHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreHistogram {
    /// Number of bins (top 16 bits of the score's order-preserving integer image).
    pub const BINS: usize = 1 << 16;

    /// A zeroed histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; Self::BINS],
            total: 0,
        }
    }

    /// The order-preserving integer image of a finite score: flips the sign-magnitude
    /// encoding of `f64` into a monotone unsigned integer (`a < b ⇔ ordinal(a) < ordinal(b)`
    /// for finite non-NaN inputs), with `-0.0` canonicalised to `+0.0` first.
    fn ordinal(score: f64) -> u64 {
        let score = if score == 0.0 { 0.0 } else { score };
        let bits = score.to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        }
    }

    /// The bin a score counts into.
    pub fn bin_of(score: f64) -> usize {
        (Self::ordinal(score) >> 48) as usize
    }

    /// Counts one score.
    pub fn record(&mut self, score: f64) {
        self.counts[Self::bin_of(score)] += 1;
        self.total += 1;
    }

    /// Counts every score of a scored store.
    pub fn record_store(&mut self, store: &BidStore) {
        for j in 0..store.len() {
            self.record(store.score(j));
        }
    }

    /// Total number of scores counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Resident bytes of the bin table (constant in the population size).
    pub fn resident_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u64>()
    }

    /// Locates each of the (ascending, distinct) global ranks: returns `(bin,
    /// first_rank_of_bin)` per rank, in order. Every rank must be smaller than
    /// [`ScoreHistogram::total`].
    fn locate(&self, sorted_ranks: &[usize]) -> Vec<(usize, usize)> {
        debug_assert!(sorted_ranks.windows(2).all(|w| w[0] < w[1]));
        let mut out = Vec::with_capacity(sorted_ranks.len());
        let mut next = 0;
        let mut start = 0usize;
        for bin in (0..Self::BINS).rev() {
            if next == sorted_ranks.len() {
                break;
            }
            let count = self.counts[bin] as usize;
            if count == 0 {
                continue;
            }
            let end = start + count;
            while next < sorted_ranks.len() && sorted_ranks[next] < end {
                debug_assert!(sorted_ranks[next] >= start);
                out.push((bin, start));
                next += 1;
            }
            start = end;
        }
        assert_eq!(
            out.len(),
            sorted_ranks.len(),
            "a requested rank lies beyond the counted population"
        );
        out
    }
}

/// One needed histogram bin of a refinement pass: collects the bin's best members (by
/// [`rank_order`]) up to the deepest needed within-bin offset.
#[derive(Debug, Clone)]
struct BinProbe {
    bin: usize,
    start_rank: usize,
    heap: CandidateHeap,
}

/// The refinement pass of the bounded ψ-FMore streamed admission: re-streams the scored
/// population (no RNG — tie-break keys are recomputed as the pure function
/// `derive_seed(salt, position)`) and keeps, per histogram bin that holds a needed rank,
/// exactly the bin's best `deepest_needed_offset + 1` members. Because needed bins cover
/// disjoint rank intervals, the total kept state is at most `deepest_needed_rank + 1`
/// candidates — winners-scale for the geometric admission tail of the ψ walk, never `O(N)`.
///
/// Feed every scored store of the round through [`RankRefiner::offer_store`] **in stream
/// order with exact bases** (the same discipline as [`ShardSelection::select`]), then
/// [`RankRefiner::into_ranked`] resolves any needed rank to its candidate — bit-identical,
/// including tie-break keys, to indexing the full-sort ranking.
#[derive(Debug, Clone)]
pub struct RankRefiner {
    salt: u64,
    /// Probes in ascending `start_rank` order — equivalently descending `bin` order.
    probes: Vec<BinProbe>,
    /// Cheap reject: the lowest needed bin (most bids of a large population score below
    /// every needed bin and never touch the probe search).
    min_bin: usize,
}

impl RankRefiner {
    /// Builds the probes for the (ascending, distinct) needed global ranks, as counted by
    /// `histogram`. `salt` is the round's tie-break salt ([`TieBreak::force_salt`]) and
    /// `dims` the bid dimensionality.
    pub fn new(histogram: &ScoreHistogram, sorted_ranks: &[usize], salt: u64, dims: usize) -> Self {
        let located = histogram.locate(sorted_ranks);
        // (bin, start_rank, deepest needed within-bin offset); ranks ascend, so the last
        // rank seen for a bin is its deepest.
        let mut spans: Vec<(usize, usize, usize)> = Vec::new();
        for (&rank, &(bin, start)) in sorted_ranks.iter().zip(&located) {
            match spans.last_mut() {
                Some(span) if span.0 == bin => span.2 = rank - start,
                _ => spans.push((bin, start, rank - start)),
            }
        }
        let min_bin = spans.last().map_or(0, |span| span.0);
        let probes = spans
            .into_iter()
            .map(|(bin, start_rank, deepest)| BinProbe {
                bin,
                start_rank,
                heap: CandidateHeap::new(dims, deepest + 1),
            })
            .collect();
        Self {
            salt,
            probes,
            min_bin,
        }
    }

    /// Offers every bid of a scored store; `base` is the number of bids streamed before it
    /// (exactly the [`ShardSelection::select`] base of the first pass, so keys agree).
    pub fn offer_store(&mut self, store: &BidStore, base: usize) {
        let dims = store.dims();
        for j in 0..store.len() {
            let score = store.scores[j];
            let bin = ScoreHistogram::bin_of(score);
            if bin < self.min_bin {
                continue;
            }
            // Probes are sorted by descending bin.
            if let Ok(p) = self
                .probes
                .binary_search_by(|probe| probe.bin.cmp(&bin).reverse())
            {
                self.probes[p].heap.offer_keyed(
                    NodeId(store.nodes[j]),
                    &store.qualities[j * dims..(j + 1) * dims],
                    store.asks[j],
                    score,
                    derive_seed(self.salt, (base + j) as u64),
                );
            }
        }
    }

    /// Resident bytes of the kept candidates (len-based, deterministic).
    pub fn resident_bytes(&self) -> usize {
        self.probes
            .iter()
            .map(|p| {
                p.heap.len()
                    * (std::mem::size_of::<Candidate>() + p.heap.dims * std::mem::size_of::<f64>())
            })
            .sum()
    }

    /// Finishes the pass: sorts each probe's members into within-bin rank order and returns
    /// a rank-addressable view of the collected candidates.
    pub fn into_ranked(self) -> RankedCandidates {
        let groups = self
            .probes
            .into_iter()
            .map(|probe| {
                debug_assert_eq!(
                    probe.heap.len(),
                    probe.heap.capacity,
                    "a needed rank was counted but never streamed"
                );
                let mut members = probe.heap.heap;
                members.sort_unstable_by(|a, b| rank_order(a.score, a.key, b.score, b.key));
                (probe.start_rank, members)
            })
            .collect();
        RankedCandidates { groups }
    }
}

/// The output of a [`RankRefiner`] pass: candidates addressable by their global rank, for
/// exactly the ranks the refiner was built for.
#[derive(Debug, Clone)]
pub struct RankedCandidates {
    /// `(first_global_rank, members in within-bin rank order)`, ascending by rank.
    groups: Vec<(usize, Vec<Candidate>)>,
}

impl RankedCandidates {
    /// The candidate at a global rank, if that rank was collected.
    pub fn get(&self, rank: usize) -> Option<&Candidate> {
        let group = match self.groups.binary_search_by(|g| g.0.cmp(&rank)) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let (start, members) = &self.groups[group];
        members.get(rank - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_numerics::seeded_rng;

    fn store_of(rows: &[(u64, [f64; 2], f64)]) -> BidStore {
        let mut store = BidStore::with_dims(2);
        for &(node, q, ask) in rows {
            store.push(NodeId(node), &q, ask).unwrap();
        }
        store
    }

    #[test]
    fn store_is_columnar_and_reusable() {
        let mut store = store_of(&[(0, [0.5, 0.5], 0.1), (1, [0.9, 0.2], 0.3)]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.dims(), 2);
        assert!(!store.is_empty());
        assert_eq!(store.node(1), NodeId(1));
        assert_eq!(store.quality(0), &[0.5, 0.5]);
        assert_eq!(store.ask(1), 0.3);
        let bytes = store.resident_bytes();
        assert_eq!(bytes, 2 * 8 + (4 + 2 + 2) * 8);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn revise_from_mutates_and_compacts_the_tail_in_order() {
        let mut store = store_of(&[
            (0, [0.5, 0.5], 0.1),
            (1, [0.9, 0.2], 0.3),
            (2, [0.4, 0.6], 0.2),
            (3, [0.7, 0.7], 0.4),
        ]);
        // Revision starts at index 1: bid 0 is untouchable.
        let dropped = store.revise_from(1, |node, quality, ask| {
            if node == NodeId(2) {
                return false;
            }
            for q in quality.iter_mut() {
                *q *= 0.5;
            }
            *ask *= 2.0;
            true
        });
        assert_eq!(dropped, 1);
        assert_eq!(store.len(), 3);
        assert_eq!(store.quality(0), &[0.5, 0.5]);
        assert_eq!(store.ask(0), 0.1);
        assert_eq!(store.node(1), NodeId(1));
        assert_eq!(store.quality(1), &[0.45, 0.1]);
        assert_eq!(store.ask(1), 0.6);
        // Bid 3 compacted down into slot 2, order preserved.
        assert_eq!(store.node(2), NodeId(3));
        assert_eq!(store.quality(2), &[0.35, 0.35]);
        assert_eq!(store.ask(2), 0.8);

        // Dropping everything from 0 empties the store; resident bytes follow.
        let dropped = store.revise_from(0, |_, _, _| false);
        assert_eq!(dropped, 3);
        assert!(store.is_empty());
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn store_validates_bids_like_the_dense_path() {
        let mut store = BidStore::with_dims(2);
        assert!(matches!(
            store.push(NodeId(0), &[0.5], 0.1),
            Err(AuctionError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            store.push(NodeId(0), &[0.5, -0.1], 0.1),
            Err(AuctionError::InvalidParameter(_))
        ));
        assert!(matches!(
            store.push(NodeId(0), &[0.5, 0.5], f64::NAN),
            Err(AuctionError::InvalidParameter(_))
        ));
        assert!(store.push(NodeId(0), &[0.5, 0.5], 0.1).is_ok());
    }

    #[test]
    fn scoring_fills_the_score_column() {
        use crate::scoring::Additive;
        let mut store = store_of(&[(0, [1.0, 0.0], 0.25), (1, [0.0, 1.0], 0.5)]);
        let rule = ScoringRule::new(Additive::new(vec![1.0, 2.0]).unwrap());
        store.score_with(&rule).unwrap();
        assert!((store.score(0) - 0.75).abs() < 1e-12);
        assert!((store.score(1) - 1.5).abs() < 1e-12);
        // Wrong dimension is rejected.
        let bad = ScoringRule::new(Additive::new(vec![1.0]).unwrap());
        assert!(store.score_with(&bad).is_err());
    }

    #[test]
    fn tie_break_consumes_exactly_n_minus_one_words() {
        for n in [0usize, 1, 2, 3, 17] {
            let mut rng = seeded_rng(7);
            let mut tie = TieBreak::new();
            for _ in 0..n {
                tie.next_key(&mut rng);
            }
            tie.finish(&mut rng);
            let mut reference = seeded_rng(7);
            for _ in 0..n.saturating_sub(1) {
                let _ = rand::Rng::gen::<u64>(&mut reference);
            }
            assert_eq!(
                rand::Rng::gen::<u64>(&mut rng),
                rand::Rng::gen::<u64>(&mut reference),
                "n={n} draw count drifted from the historical shuffle"
            );
        }
    }

    #[test]
    fn tie_keys_are_distinct_and_shard_independent() {
        let mut rng = seeded_rng(3);
        let mut tie = TieBreak::new();
        let keys: Vec<u64> = (0..64).map(|_| tie.next_key(&mut rng)).collect();
        // Re-key index 0 the way a selector does once the salt exists.
        let mut keys = keys;
        keys[0] = tie.key_of(0);
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len(), "keys must be pairwise distinct");
        // key_of is a pure function of (salt, i): recomputing matches.
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(tie.key_of(i), k);
        }
    }

    #[test]
    fn selector_keeps_the_best_k_and_best_dropped_score() {
        let mut selector = BidSelector::new(1, 3);
        let mut rng = seeded_rng(11);
        let scores = [0.1, 0.9, 0.4, 0.8, 0.2, 0.7, 0.95];
        for (i, &s) in scores.iter().enumerate() {
            selector.offer(NodeId(i as u64), &[s], 0.0, s, &mut rng);
        }
        assert_eq!(selector.offered(), scores.len());
        assert_eq!(selector.kept(), 3);
        assert!(selector.resident_bytes() > 0);
        let pool = selector.finish(&mut rng);
        let kept: Vec<u64> = pool.candidates().iter().map(|c| c.node.0).collect();
        assert_eq!(kept, vec![6, 1, 3], "best three scores in rank order");
        // Best dropped is the fourth-best score overall.
        assert!((pool.best_dropped_score().unwrap() - 0.7).abs() < 1e-12);
        assert_eq!(pool.offered(), scores.len());
        assert_eq!(pool.len(), 3);
        assert!(!pool.is_empty());
    }

    #[test]
    fn selector_matches_full_sort_under_duplicate_scores() {
        // Stream vs sort over a population full of exact ties: both must produce the same
        // order because they share the same (score, key) total order.
        let scores = [0.5, 0.5, 0.9, 0.5, 0.9, 0.1, 0.5];
        let mut selector = BidSelector::new(1, scores.len());
        let mut rng = seeded_rng(21);
        for (i, &s) in scores.iter().enumerate() {
            selector.offer(NodeId(i as u64), &[s], 0.0, s, &mut rng);
        }
        let pool = selector.finish(&mut rng);

        let mut rng2 = seeded_rng(21);
        let mut tie = TieBreak::new();
        let mut keyed: Vec<(usize, f64, u64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i, s, tie.next_key(&mut rng2)))
            .collect();
        keyed[0].2 = tie.key_of(0);
        tie.finish(&mut rng2);
        keyed.sort_by(|a, b| rank_order(a.1, a.2, b.1, b.2));

        let streamed: Vec<u64> = pool.candidates().iter().map(|c| c.node.0).collect();
        let sorted: Vec<u64> = keyed.iter().map(|&(i, _, _)| i as u64).collect();
        assert_eq!(streamed, sorted);
        // And the RNG streams end at the same position.
        assert_eq!(
            rand::Rng::gen::<u64>(&mut rng),
            rand::Rng::gen::<u64>(&mut rng2)
        );
    }

    #[test]
    fn selection_is_independent_of_sharding() {
        use crate::scoring::Additive;
        let rule = ScoringRule::new(Additive::new(vec![1.0, 1.0]).unwrap());
        let rows: Vec<(u64, [f64; 2], f64)> = (0..40)
            .map(|i| {
                let q = [((i * 7) % 11) as f64 / 11.0, ((i * 5) % 13) as f64 / 13.0];
                (i, q, ((i * 3) % 7) as f64 / 10.0)
            })
            .collect();
        let run = |chunk: usize| {
            let mut selector = BidSelector::new(2, 8);
            let mut rng = seeded_rng(5);
            for shard in rows.chunks(chunk) {
                let mut store = store_of(shard);
                store.score_with(&rule).unwrap();
                selector.offer_store(&store, &mut rng);
            }
            let pool = selector.finish(&mut rng);
            pool.candidates()
                .iter()
                .map(|c| (c.node.0, c.score.to_bits(), c.key))
                .collect::<Vec<_>>()
        };
        let whole = run(40);
        assert_eq!(whole, run(1));
        assert_eq!(whole, run(7));
        assert_eq!(whole, run(13));
    }

    #[test]
    fn single_bid_round_consumes_no_rng() {
        let mut selector = BidSelector::new(1, 4);
        let mut rng = seeded_rng(9);
        selector.offer(NodeId(0), &[1.0], 0.5, 0.5, &mut rng);
        let pool = selector.finish(&mut rng);
        assert_eq!(pool.len(), 1);
        let mut untouched = seeded_rng(9);
        assert_eq!(
            rand::Rng::gen::<u64>(&mut rng),
            rand::Rng::gen::<u64>(&mut untouched)
        );
    }

    #[test]
    fn histogram_bins_preserve_score_order_and_merge_signed_zero() {
        // Higher score ⇒ same-or-higher bin, across signs.
        let samples = [
            -3.0e8, -1.5, -1e-300, 0.0, 1e-300, 0.25, 0.2500001, 7.0, 3.0e8,
        ];
        for w in samples.windows(2) {
            assert!(
                ScoreHistogram::bin_of(w[0]) <= ScoreHistogram::bin_of(w[1]),
                "bin order inverted between {} and {}",
                w[0],
                w[1]
            );
        }
        // rank_order treats -0.0 and +0.0 as equal, so they must share a bin.
        assert_eq!(ScoreHistogram::bin_of(-0.0), ScoreHistogram::bin_of(0.0));
        let mut hist = ScoreHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        assert_eq!(hist.total(), samples.len() as u64);
        assert_eq!(hist.resident_bytes(), ScoreHistogram::BINS * 8);
    }

    #[test]
    fn rank_refiner_reproduces_full_sort_ranks_bitwise() {
        use crate::scoring::Additive;
        let rule = ScoringRule::new(Additive::new(vec![1.0, 1.0]).unwrap());
        // Quantised qualities force plenty of exact score ties (within-bin ordering is then
        // decided purely by tie-break keys).
        let rows: Vec<(u64, [f64; 2], f64)> = (0..300)
            .map(|i| {
                let q = [((i * 7) % 5) as f64 / 5.0, ((i * 11) % 4) as f64 / 4.0];
                (i, q, ((i * 3) % 6) as f64 / 8.0)
            })
            .collect();
        let salt = 0xDECAF_u64;

        // Ground truth: the full-sort ranking under the same keys.
        let mut full: Vec<Candidate> = rows
            .iter()
            .enumerate()
            .map(|(i, &(node, q, ask))| {
                let mut store = BidStore::with_dims(2);
                store.push(NodeId(node), &q, ask).unwrap();
                store.score_with(&rule).unwrap();
                Candidate {
                    node: NodeId(node),
                    score: store.score(0),
                    key: derive_seed(salt, i as u64),
                    ask,
                    quality: q.to_vec(),
                }
            })
            .collect();
        full.sort_by(|a, b| rank_order(a.score, a.key, b.score, b.key));

        // First pass: histogram over shards.
        let mut hist = ScoreHistogram::new();
        for shard in rows.chunks(37) {
            let mut store = store_of(shard);
            store.score_with(&rule).unwrap();
            hist.record_store(&store);
        }
        assert_eq!(hist.total() as usize, rows.len());

        // Needed ranks spread across the ranking, including tied regions and the tail.
        let needed = vec![0usize, 1, 5, 17, 18, 19, 64, 123, 299];
        let mut refiner = RankRefiner::new(&hist, &needed, salt, 2);
        let mut base = 0;
        for shard in rows.chunks(37) {
            let mut store = store_of(shard);
            store.score_with(&rule).unwrap();
            refiner.offer_store(&store, base);
            base += store.len();
        }
        // Bounded: the refiner never holds more than deepest_rank + 1 candidates.
        assert!(refiner.resident_bytes() <= 300 * (std::mem::size_of::<Candidate>() + 16));
        let ranked = refiner.into_ranked();
        for &r in &needed {
            let c = ranked.get(r).expect("needed rank collected");
            assert_eq!(
                (c.node, c.score.to_bits(), c.key),
                (full[r].node, full[r].score.to_bits(), full[r].key),
                "rank {r} diverged from the full sort"
            );
        }
        // Ranks beyond every collected span are absent, not wrong.
        assert!(ranked.get(300).is_none());
    }

    #[test]
    fn rank_order_is_a_strict_total_order_on_distinct_keys() {
        assert_eq!(rank_order(1.0, 5, 0.5, 1), Ordering::Less);
        assert_eq!(rank_order(0.5, 1, 1.0, 5), Ordering::Greater);
        assert_eq!(rank_order(0.5, 1, 0.5, 2), Ordering::Less);
        assert_eq!(rank_order(0.5, 2, 0.5, 1), Ordering::Greater);
        // NaN scores fall back to the key order instead of panicking.
        assert_eq!(rank_order(f64::NAN, 1, f64::NAN, 2), Ordering::Less);
    }
}
