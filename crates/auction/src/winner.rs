//! Winner determination (step 3 of FMore).
//!
//! FMore sorts all scored bids in descending order and selects the top `K`. The ψ-FMore
//! extension of Section III-C walks the sorted list and admits each node independently with
//! probability ψ until `K` winners are found (wrapping around the list until the winner set
//! is filled), which trades selection quality for data diversity. Ties are resolved by a coin
//! flip, as in the paper's simulator.

use crate::types::ScoredBid;
use rand::Rng;

/// How the aggregator forms the winner set from the sorted scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionRule {
    /// Plain FMore: the `K` highest-scoring bids win.
    TopK,
    /// ψ-FMore: nodes are considered in descending score order and each is admitted with
    /// probability ψ until `K` winners are chosen. `psi = 1.0` degenerates to [`Self::TopK`];
    /// small ψ approaches uniform random selection (RandFL).
    PsiFMore {
        /// Per-node admission probability ψ ∈ (0, 1].
        psi: f64,
    },
}

impl SelectionRule {
    /// Returns `true` if the rule's parameters are valid (ψ ∈ (0, 1]).
    pub fn is_valid(&self) -> bool {
        match self {
            SelectionRule::TopK => true,
            SelectionRule::PsiFMore { psi } => *psi > 0.0 && *psi <= 1.0 && psi.is_finite(),
        }
    }

    /// Selects the indices (into `sorted`) of the winners.
    ///
    /// `sorted` must already be in descending score order; at most `k` indices are returned
    /// and each index appears at most once. Tie-breaking among equal scores is performed by
    /// the caller via the deterministic tie-break keys of [`crate::store::TieBreak`] before
    /// sorting (see [`crate::mechanism::Auction`]).
    pub fn select<R: Rng + ?Sized>(
        &self,
        sorted: &[ScoredBid],
        k: usize,
        rng: &mut R,
    ) -> Vec<usize> {
        self.select_indices(sorted.len(), k, rng)
    }

    /// Rank-based core of [`SelectionRule::select`]: selects winner positions out of `n`
    /// candidates already in descending rank order. The rule never inspects bid contents —
    /// only ranks — so the dense full-sort path and the streaming
    /// [`crate::store::StandingPool`] path share this exact implementation (and therefore
    /// the exact RNG draw sequence).
    ///
    /// State is `O(k)` regardless of `n`: the admitted set is a sorted position vector, not
    /// an `n`-wide bitmap, so the ψ walk over a 10⁸-candidate ranking costs winners-sized
    /// memory. The draw sequence is unchanged from the bitmap implementation — one
    /// `rng.gen::<f64>()` per *non-admitted* position in visit order — which is what keeps
    /// every seeded history and committed golden fingerprint replaying bit-for-bit.
    pub fn select_indices<R: Rng + ?Sized>(&self, n: usize, k: usize, rng: &mut R) -> Vec<usize> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        match self {
            SelectionRule::TopK => (0..k).collect(),
            SelectionRule::PsiFMore { psi } => {
                let psi = psi.clamp(0.0, 1.0);
                let mut winners = Vec::with_capacity(k);
                // Sorted admitted positions — at most k entries ever exist.
                let mut admitted: Vec<usize> = Vec::with_capacity(k);
                // Walk the rank order repeatedly until K nodes are admitted. With ψ = 1 the
                // first pass admits exactly the top K; with ψ < 1 later-ranked nodes get a
                // chance. A final deterministic pass guarantees termination even for tiny ψ.
                let mut passes = 0;
                while winners.len() < k && passes < 64 {
                    for idx in 0..n {
                        if winners.len() >= k {
                            break;
                        }
                        if let Err(pos) = admitted.binary_search(&idx) {
                            if rng.gen::<f64>() < psi {
                                admitted.insert(pos, idx);
                                winners.push(idx);
                            }
                        }
                    }
                    passes += 1;
                }
                // Deterministic fill (highest-ranked first) if the probabilistic passes did
                // not complete the set.
                let mut idx = 0;
                while winners.len() < k {
                    if let Err(pos) = admitted.binary_search(&idx) {
                        admitted.insert(pos, idx);
                        winners.push(idx);
                    }
                    idx += 1;
                }
                winners
            }
        }
    }
}

/// Probability that ψ-FMore fills a winner set of size `K` from `N` candidates within one
/// sweep of the candidate list: `Pr(ψ) = Σ_{i=0}^{N−K} C(i+K−1, i) (1−ψ)^i ψ^K` (Section
/// III-C). Approaches 1 for moderate ψ.
///
/// The sum is accumulated in **log space**: the direct product form overflows the binomial
/// factor (and underflows `ψ^K`) already for populations in the hundreds, whereas the
/// population-scale selection path asks about `N` in the millions. Each term is evaluated as
/// `exp(ln C(i+K−1, i) + i·ln(1−ψ) + K·ln ψ)` with the log-binomial built by the same
/// incremental recurrence; on small inputs this agrees with the direct form to ~1e-12
/// (pinned by the property suite). Terms are unimodal in `i`, so accumulation stops early
/// once past the peak they stop contributing at `f64` precision — the large-`N` cost is
/// bounded by where the mass lives, not by `N`.
pub fn psi_fill_probability(n: usize, k: usize, psi: f64) -> f64 {
    if k == 0 || k > n || !(0.0..=1.0).contains(&psi) {
        return 0.0;
    }
    if psi == 1.0 {
        return 1.0;
    }
    if psi == 0.0 {
        return 0.0;
    }
    let ln_miss = (1.0 - psi).ln();
    let ln_hit_k = k as f64 * psi.ln();
    // Terms are unimodal in i: the ratio term_{i+1}/term_i = (i+K)/(i+1)·(1−ψ) falls below
    // one once i exceeds this peak. Past it the tail is geometric with ratio < 1−ψ, so it
    // is bounded by term_i/ψ — comparison happens in log space, because individual terms
    // can underflow to 0.0 while the running total (or a later un-underflowed region on the
    // way up to the peak) is still meaningful.
    let i_peak = (k as f64 * (1.0 - psi) - 1.0) / psi;
    let mut total = 0.0_f64;
    // ln C(i + K - 1, i), built incrementally — same recurrence as the product form.
    let mut ln_binom = 0.0_f64;
    for i in 0..=(n - k) {
        if i > 0 {
            ln_binom += ((i + k - 1) as f64 / i as f64).ln();
        }
        let ln_term = ln_binom + i as f64 * ln_miss + ln_hit_k;
        total += ln_term.exp();
        if total >= 1.0 {
            return 1.0;
        }
        if i as f64 > i_peak {
            let ln_tail_bound = ln_term - psi.ln();
            // Invisible next to the total at f64 precision — or, when everything so far
            // underflowed, below the smallest subnormal (the sum is exactly 0).
            let negligible = if total > 0.0 {
                ln_tail_bound < total.ln() - 42.0
            } else {
                ln_tail_bound < -745.0
            };
            if negligible {
                break;
            }
        }
    }
    total.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{NodeId, Quality};
    use fmore_numerics::seeded_rng;

    fn sorted_bids(scores: &[f64]) -> Vec<ScoredBid> {
        let mut bids: Vec<ScoredBid> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| ScoredBid {
                node: NodeId(i as u64),
                quality: Quality::default(),
                ask: 0.0,
                score: s,
            })
            .collect();
        bids.sort_by(ScoredBid::by_descending_score);
        bids
    }

    #[test]
    fn top_k_selects_highest_scores() {
        let bids = sorted_bids(&[0.1, 0.9, 0.5, 0.7, 0.3]);
        let mut rng = seeded_rng(1);
        let winners = SelectionRule::TopK.select(&bids, 3, &mut rng);
        assert_eq!(winners, vec![0, 1, 2]);
        let chosen: Vec<u64> = winners.iter().map(|&i| bids[i].node.0).collect();
        assert_eq!(chosen, vec![1, 3, 2]);
    }

    #[test]
    fn top_k_handles_small_populations_and_zero_k() {
        let bids = sorted_bids(&[0.4, 0.2]);
        let mut rng = seeded_rng(1);
        assert_eq!(SelectionRule::TopK.select(&bids, 5, &mut rng).len(), 2);
        assert!(SelectionRule::TopK.select(&bids, 0, &mut rng).is_empty());
        assert!(SelectionRule::TopK.select(&[], 3, &mut rng).is_empty());
    }

    #[test]
    fn psi_one_equals_top_k() {
        let bids = sorted_bids(&[0.9, 0.8, 0.7, 0.6, 0.5, 0.4]);
        let mut rng = seeded_rng(2);
        let a = SelectionRule::PsiFMore { psi: 1.0 }.select(&bids, 3, &mut rng);
        assert_eq!(a, vec![0, 1, 2]);
    }

    #[test]
    fn psi_selection_always_fills_k_distinct_winners() {
        let bids = sorted_bids(&(0..50).map(|i| i as f64 / 50.0).collect::<Vec<_>>());
        let mut rng = seeded_rng(3);
        for &psi in &[0.05, 0.2, 0.5, 0.8] {
            let winners = SelectionRule::PsiFMore { psi }.select(&bids, 20, &mut rng);
            assert_eq!(winners.len(), 20, "psi={psi}");
            let mut dedup = winners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 20, "psi={psi} produced duplicates");
        }
    }

    #[test]
    fn larger_psi_concentrates_on_top_ranks() {
        // With ψ = 0.9 most winners come from the top of the ranking; with ψ = 0.2 the
        // selection is much more scattered (Fig. 11b of the paper).
        let bids = sorted_bids(&(0..100).map(|i| 1.0 - i as f64 / 100.0).collect::<Vec<_>>());
        let mut rng = seeded_rng(4);
        let trials = 200;
        let mut top30_high = 0usize;
        let mut top30_low = 0usize;
        for _ in 0..trials {
            let high = SelectionRule::PsiFMore { psi: 0.9 }.select(&bids, 20, &mut rng);
            let low = SelectionRule::PsiFMore { psi: 0.2 }.select(&bids, 20, &mut rng);
            top30_high += high.iter().filter(|&&i| i < 30).count();
            top30_low += low.iter().filter(|&&i| i < 30).count();
        }
        assert!(
            top30_high > top30_low,
            "ψ=0.9 should pick more top-30 nodes ({top30_high}) than ψ=0.2 ({top30_low})"
        );
    }

    /// The pre-rewrite O(n)-bitmap walk, kept as the ground truth the O(k) sorted-set
    /// implementation must reproduce draw-for-draw.
    fn bitmap_walk<R: rand::Rng + ?Sized>(n: usize, k: usize, psi: f64, rng: &mut R) -> Vec<usize> {
        let k = k.min(n);
        if k == 0 {
            return Vec::new();
        }
        let psi = psi.clamp(0.0, 1.0);
        let mut winners = Vec::with_capacity(k);
        let mut admitted = vec![false; n];
        let mut passes = 0;
        while winners.len() < k && passes < 64 {
            for (idx, taken) in admitted.iter_mut().enumerate() {
                if winners.len() >= k {
                    break;
                }
                if *taken {
                    continue;
                }
                if rng.gen::<f64>() < psi {
                    *taken = true;
                    winners.push(idx);
                }
            }
            passes += 1;
        }
        for (idx, taken) in admitted.iter_mut().enumerate() {
            if winners.len() >= k {
                break;
            }
            if !*taken {
                *taken = true;
                winners.push(idx);
            }
        }
        winners
    }

    #[test]
    fn bounded_walk_matches_bitmap_walk_bitwise() {
        for &(n, k) in &[(1usize, 1usize), (5, 3), (40, 40), (200, 17), (513, 64)] {
            for &psi in &[0.02, 0.1, 0.5, 0.9, 1.0] {
                for seed in 0..8 {
                    let mut rng_a = seeded_rng(seed);
                    let mut rng_b = seeded_rng(seed);
                    let bounded = SelectionRule::PsiFMore { psi }.select_indices(n, k, &mut rng_a);
                    let reference = bitmap_walk(n, k, psi, &mut rng_b);
                    assert_eq!(
                        bounded, reference,
                        "n={n} k={k} psi={psi} seed={seed}: walk diverged from bitmap"
                    );
                    // The RNG cursor must land in the same place too.
                    assert_eq!(
                        rand::Rng::gen::<u64>(&mut rng_a),
                        rand::Rng::gen::<u64>(&mut rng_b),
                        "n={n} k={k} psi={psi} seed={seed}: RNG consumption diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn walk_is_cheap_at_population_scale() {
        // 1e8 candidates: the walk must neither allocate an n-wide bitmap nor visit more
        // than a winners-sized prefix at moderate ψ.
        let mut rng = seeded_rng(7);
        let winners =
            SelectionRule::PsiFMore { psi: 0.8 }.select_indices(100_000_000, 64, &mut rng);
        assert_eq!(winners.len(), 64);
        let mut dedup = winners.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 64);
    }

    #[test]
    fn selection_rule_validity() {
        assert!(SelectionRule::TopK.is_valid());
        assert!(SelectionRule::PsiFMore { psi: 0.5 }.is_valid());
        assert!(!SelectionRule::PsiFMore { psi: 0.0 }.is_valid());
        assert!(!SelectionRule::PsiFMore { psi: 1.5 }.is_valid());
        assert!(!SelectionRule::PsiFMore { psi: f64::NAN }.is_valid());
    }

    #[test]
    fn fill_probability_behaves_as_in_the_paper() {
        // Pr(ψ) approaches one for moderate ψ and reasonable N, K.
        assert!(psi_fill_probability(100, 20, 0.8) > 0.99);
        assert_eq!(psi_fill_probability(100, 20, 1.0), 1.0);
        // Larger ψ always yields a larger fill probability.
        let p_small = psi_fill_probability(30, 10, 0.3);
        let p_big = psi_fill_probability(30, 10, 0.7);
        assert!(p_big > p_small);
        // Degenerate configurations.
        assert_eq!(psi_fill_probability(5, 0, 0.5), 0.0);
        assert_eq!(psi_fill_probability(5, 6, 0.5), 0.0);
        assert_eq!(psi_fill_probability(5, 2, 1.5), 0.0);
    }
}
