//! Payment allocation rules.
//!
//! Section III-A notes that both the first-price and the second-price auction can be applied
//! to FMore; the paper (and therefore our default) uses the **first-score** rule, in which a
//! winner is paid exactly what it asked. The generalized **second-score** rule instead pays
//! each winner the amount that would make its score equal to the best losing score, the
//! natural K-winner extension of the second-price sealed-bid auction.

use crate::scoring::ScoringRule;
use crate::types::ScoredBid;

/// How winners are paid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingRule {
    /// Winners are paid their asked payment `p` (the paper's choice).
    #[default]
    FirstPrice,
    /// Winner `i` is paid `s(q_i) − S_{K+1}` where `S_{K+1}` is the best losing score, so its
    /// realised score equals the first excluded bid's. Falls back to the asked payment when
    /// every bidder wins (no losing score exists).
    SecondPrice,
}

impl PricingRule {
    /// Computes the payment of the winner at `sorted[winner_idx]`.
    ///
    /// `sorted` must be in descending score order and `best_losing_score` is the score of the
    /// highest-ranked bid that did **not** win, if any.
    pub fn payment(
        &self,
        rule: &ScoringRule,
        sorted: &[ScoredBid],
        winner_idx: usize,
        best_losing_score: Option<f64>,
    ) -> f64 {
        let bid = &sorted[winner_idx];
        self.payment_from_parts(
            rule,
            bid.quality.as_slice(),
            bid.ask,
            bid.score,
            best_losing_score,
        )
    }

    /// The payment of one winner from its raw bid parts — the single pricing implementation
    /// shared by the dense [`crate::mechanism::Auction::run`] path and the streaming
    /// [`crate::store::StandingPool`] path (which holds columnar candidates, not
    /// [`ScoredBid`]s).
    pub fn payment_from_parts(
        &self,
        rule: &ScoringRule,
        quality: &[f64],
        ask: f64,
        score: f64,
        best_losing_score: Option<f64>,
    ) -> f64 {
        match self {
            PricingRule::FirstPrice => ask,
            PricingRule::SecondPrice => match best_losing_score {
                Some(threshold) => {
                    let s_q = rule.function().evaluate(quality).unwrap_or(score + ask);
                    // Pay the winner up to the point where its score equals the threshold,
                    // but never less than it asked for (a winner is never punished for
                    // bidding aggressively).
                    (s_q - threshold).max(ask)
                }
                None => ask,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::{Additive, ScoringRule};
    use crate::types::{NodeId, Quality};

    fn rule() -> ScoringRule {
        ScoringRule::new(Additive::new(vec![1.0]).unwrap())
    }

    fn bid(node: u64, q: f64, ask: f64, rule: &ScoringRule) -> ScoredBid {
        let quality = Quality::new(vec![q]);
        let score = rule.score(&quality, ask).unwrap();
        ScoredBid {
            node: NodeId(node),
            quality,
            ask,
            score,
        }
    }

    #[test]
    fn first_price_pays_the_ask() {
        let r = rule();
        let sorted = vec![bid(0, 1.0, 0.3, &r), bid(1, 0.8, 0.2, &r)];
        assert_eq!(
            PricingRule::FirstPrice.payment(&r, &sorted, 0, Some(0.6)),
            0.3
        );
    }

    #[test]
    fn second_price_pays_up_to_best_losing_score() {
        let r = rule();
        // Winner: s(q) = 1.0, ask 0.3 (score 0.7). Best losing score 0.5.
        let sorted = vec![bid(0, 1.0, 0.3, &r), bid(1, 0.8, 0.3, &r)];
        let p = PricingRule::SecondPrice.payment(&r, &sorted, 0, Some(0.5));
        assert!(
            (p - 0.5).abs() < 1e-12,
            "winner should be paid s(q) − S_loser = 0.5, got {p}"
        );
        // The payment is never below the ask.
        let p = PricingRule::SecondPrice.payment(&r, &sorted, 0, Some(0.9));
        assert_eq!(p, 0.3);
    }

    #[test]
    fn second_price_without_losers_falls_back_to_first_price() {
        let r = rule();
        let sorted = vec![bid(0, 1.0, 0.25, &r)];
        assert_eq!(PricingRule::SecondPrice.payment(&r, &sorted, 0, None), 0.25);
    }

    #[test]
    fn second_price_weakly_exceeds_first_price() {
        let r = rule();
        let sorted = vec![
            bid(0, 2.0, 0.4, &r),
            bid(1, 1.5, 0.35, &r),
            bid(2, 1.0, 0.3, &r),
        ];
        let losing = Some(sorted[2].score);
        for idx in 0..2 {
            let fp = PricingRule::FirstPrice.payment(&r, &sorted, idx, losing);
            let sp = PricingRule::SecondPrice.payment(&r, &sorted, idx, losing);
            assert!(sp >= fp, "second price must weakly exceed first price");
        }
    }

    #[test]
    fn default_is_first_price() {
        assert_eq!(PricingRule::default(), PricingRule::FirstPrice);
    }
}
