//! Repeated pure-auction games: the reusable simulation behind the parameter sweeps of
//! Figs. 9b, 10b, and 11b.
//!
//! The experiment harness used to construct its own [`EquilibriumSolver`] and [`Auction`]
//! inline for every sweep point; this module is now the single place where a *stand-alone*
//! auction game (no federated training attached) is assembled. A sweep over `N`, `K`, or ψ
//! becomes a data change — a different [`GameConfig`] per point — instead of another copy of
//! the auction loop.

use crate::cost::LinearCost;
use crate::equilibrium::EquilibriumSolver;
use crate::error::AuctionError;
use crate::mechanism::Auction;
use crate::pricing::PricingRule;
use crate::scoring::{CobbDouglas, ScoringRule};
use crate::types::NodeId;
use crate::winner::SelectionRule;
use fmore_numerics::rng::seeded_rng;
use fmore_numerics::{Distribution1D, UniformDist};
use rand::Rng;

/// Configuration of one repeated stand-alone auction game.
#[derive(Debug, Clone, PartialEq)]
pub struct GameConfig {
    /// Population size `N`.
    pub population: usize,
    /// Winners per game `K`.
    pub winners: usize,
    /// Independent games averaged per statistic.
    pub trials: usize,
    /// Multiplicative scale α of the Cobb–Douglas scoring function.
    pub scoring_scale: f64,
    /// Per-resource exponents of the Cobb–Douglas scoring function.
    pub scoring_exponents: Vec<f64>,
    /// Per-resource coefficients β of the linear private cost.
    pub cost_coefficients: Vec<f64>,
    /// Support of every node's per-resource capacity draw.
    pub capacity_range: (f64, f64),
    /// Support `[θ̲, θ̄]` of the private cost parameter.
    pub theta_range: (f64, f64),
    /// θ grid resolution of the equilibrium tabulation.
    pub grid_size: usize,
    /// How winners are selected.
    pub selection: SelectionRule,
    /// How winners are paid.
    pub pricing: PricingRule,
}

impl GameConfig {
    /// The paper's simulator game (Section V-A) for a given `N` and `K`: scoring
    /// `s(q) = 25·q1·q2`, linear cost `θ(2q1 + q2)`, capacities uniform in `[0.3, 1]`,
    /// θ uniform in `[0.1, 1]`, top-K selection, first-price payment.
    pub fn paper_simulation(population: usize, winners: usize, trials: usize) -> Self {
        Self {
            population,
            winners,
            trials,
            scoring_scale: 25.0,
            scoring_exponents: vec![1.0, 1.0],
            cost_coefficients: vec![2.0, 1.0],
            capacity_range: (0.3, 1.0),
            theta_range: (0.1, 1.0),
            grid_size: 96,
            selection: SelectionRule::TopK,
            pricing: PricingRule::FirstPrice,
        }
    }

    /// Number of resource dimensions of the game.
    pub fn dims(&self) -> usize {
        self.scoring_exponents.len()
    }
}

/// Mean winner statistics over the trials of one game configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameStatistics {
    /// Mean payment per winner, averaged over trials.
    pub mean_payment: f64,
    /// Mean score per winner, averaged over trials.
    pub mean_score: f64,
}

/// Runs the configured stand-alone auction game `trials` times and averages the winner
/// payment and score (the quantities plotted in Figs. 9b and 10b).
///
/// Every node's per-resource capacity is drawn uniformly from `capacity_range` and its θ
/// from `theta_range`; bids are the capacity-capped equilibrium bids of
/// [`EquilibriumSolver::capped_bid`], and each trial runs one batched auction round.
///
/// # Errors
///
/// Propagates equilibrium-solver and auction construction/run failures.
pub fn game_statistics(config: &GameConfig, seed: u64) -> Result<GameStatistics, AuctionError> {
    let scoring = CobbDouglas::with_scale(config.scoring_scale, config.scoring_exponents.clone())?;
    let cost = LinearCost::new(config.cost_coefficients.clone())?;
    let theta = UniformDist::new(config.theta_range.0, config.theta_range.1)?;
    let solver = EquilibriumSolver::builder()
        .scoring(scoring.clone())
        .cost(cost)
        .theta(theta)
        .bounds(vec![(0.0, 1.0); config.dims()])
        .population(config.population)
        .winners(config.winners)
        .grid_size(config.grid_size)
        .build()?;
    let auction = Auction::new(
        ScoringRule::new(scoring),
        config.winners,
        config.selection,
        config.pricing,
    );

    let (cap_lo, cap_hi) = config.capacity_range;
    let mut rng = seeded_rng(seed);
    let trials = config.trials.max(1);
    let mut payments = Vec::with_capacity(trials);
    let mut scores = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut bids = Vec::with_capacity(config.population);
        for i in 0..config.population {
            let t = theta.sample(&mut rng);
            let capacity: Vec<f64> = (0..config.dims())
                .map(|_| rng.gen_range(cap_lo..=cap_hi))
                .collect();
            bids.push(solver.capped_bid(NodeId(i as u64), t, &capacity)?);
        }
        let outcome = auction.run(bids, &mut rng)?;
        payments.push(outcome.mean_winner_payment());
        scores.push(outcome.mean_winner_score());
    }
    Ok(GameStatistics {
        mean_payment: fmore_numerics::stats::mean(&payments),
        mean_score: fmore_numerics::stats::mean(&scores),
    })
}

/// How many ψ-FMore selections land in the top-10 / top-20 / top-30 score ranks, averaged
/// over repeated selections from a fixed strictly-decreasing score ladder (Fig. 11b).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankSpreadCounts {
    /// Mean number of winners ranked in the top 10.
    pub top10: f64,
    /// Mean number of winners ranked in the top 20.
    pub top20: f64,
    /// Mean number of winners ranked in the top 30.
    pub top30: f64,
}

/// Selects `k` winners from an `n`-node score ladder with the ψ-FMore rule `trials` times and
/// counts how many selections fall in the top 10/20/30 ranks.
///
/// Runs on the bounded rank-only walk ([`SelectionRule::select_indices`]) — the exact code
/// path (and draw sequence) of the streamed bounded ψ admission — rather than
/// materialising an `n`-element score ladder: the ladder carried no information the walk
/// ever read (it is rank-based by construction), so sweeping `n` into the millions costs
/// winners-sized memory. Bit-identical to the historical ladder path, which consumed no RNG
/// building the ladder.
pub fn psi_rank_spread(psi: f64, n: usize, k: usize, trials: usize, seed: u64) -> RankSpreadCounts {
    let rule = SelectionRule::PsiFMore { psi };
    let mut rng = seeded_rng(seed);
    let (mut t10, mut t20, mut t30) = (0usize, 0usize, 0usize);
    let trials = trials.max(1);
    for _ in 0..trials {
        let winners = rule.select_indices(n, k, &mut rng);
        t10 += winners.iter().filter(|&&i| i < 10).count();
        t20 += winners.iter().filter(|&&i| i < 20).count();
        t30 += winners.iter().filter(|&&i| i < 30).count();
    }
    RankSpreadCounts {
        top10: t10 as f64 / trials as f64,
        top20: t20 as f64 / trials as f64,
        top30: t30 as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_game_is_deterministic_per_seed() {
        let config = GameConfig::paper_simulation(20, 5, 2);
        let a = game_statistics(&config, 7).unwrap();
        let b = game_statistics(&config, 7).unwrap();
        assert_eq!(a, b);
        let c = game_statistics(&config, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn statistics_are_positive_and_bounded() {
        let config = GameConfig::paper_simulation(30, 5, 3);
        let stats = game_statistics(&config, 1).unwrap();
        assert!(stats.mean_payment > 0.0);
        assert!(stats.mean_score > 0.0);
        // Score cannot exceed the scoring scale at full quality and zero ask.
        assert!(stats.mean_score <= config.scoring_scale);
    }

    #[test]
    fn competition_lowers_payments_and_raises_scores() {
        // Theorem 2 / Fig. 9b.
        let small = game_statistics(&GameConfig::paper_simulation(20, 5, 4), 1).unwrap();
        let large = game_statistics(&GameConfig::paper_simulation(80, 5, 4), 1).unwrap();
        assert!(large.mean_payment <= small.mean_payment + 0.05);
        assert!(large.mean_score >= small.mean_score - 0.05);
    }

    #[test]
    fn rank_spread_concentrates_with_large_psi() {
        let low = psi_rank_spread(0.2, 100, 20, 200, 1);
        let high = psi_rank_spread(0.8, 100, 20, 200, 1);
        assert!(high.top30 > low.top30);
        assert!(high.top10 > low.top10);
        for r in [&low, &high] {
            assert!(r.top10 <= 10.0 + 1e-9);
            assert!(r.top10 <= r.top20 && r.top20 <= r.top30);
        }
    }
}
