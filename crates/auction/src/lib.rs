//! The FMore incentive mechanism: a multi-dimensional procurement auction with `K` winners.
//!
//! This crate is the primary contribution of the reproduced paper
//! *"FMore: An Incentive Scheme of Multi-dimensional Auction for Federated Learning in MEC"*
//! (Zeng, Zhang, Wang, Chu — ICDCS 2020). Each federated-learning round is preceded by a
//! sealed-bid, first-score procurement auction:
//!
//! 1. the aggregator broadcasts a **scoring rule** `S(q, p) = s(q) − p` ([`scoring`]),
//! 2. every edge node computes its **Nash-equilibrium bid** `(q*, p*)` from its private cost
//!    parameter θ ([`equilibrium`], implementing Che's Theorem 1/2, Proposition 1 and the
//!    paper's Theorem 1),
//! 3. the aggregator sorts scores and selects the **top-K winners** — or, in ψ-FMore, accepts
//!    nodes in score order each with probability ψ ([`winner`]),
//! 4. winners are paid under a **first-price** (default) or generalized **second-price** rule
//!    ([`pricing`]).
//!
//! The mechanism-level guarantees of Section IV are exposed as executable checks in
//! [`properties`]: incentive compatibility, individual rationality, Pareto efficiency (social
//! surplus maximisation), profit monotonicity in `N` and `K`, and the Cobb-Douglas resource
//! guidance of Proposition 4.
//!
//! # Quickstart
//!
//! ```
//! use fmore_auction::prelude::*;
//! use fmore_numerics::UniformDist;
//!
//! // Scoring rule s(q) = 25·q1·q2 as used by the paper's simulator, linear cost.
//! let scoring = CobbDouglas::with_scale(25.0, vec![1.0, 1.0])?;
//! let cost = LinearCost::new(vec![0.6, 0.4])?;
//! let theta = UniformDist::new(0.1, 1.0)?;
//! let bounds = vec![(0.0, 1.0), (0.0, 1.0)];
//!
//! // Equilibrium bidding strategy for an auction with N = 100 nodes and K = 20 winners.
//! let solver = EquilibriumSolver::builder()
//!     .scoring(scoring.clone())
//!     .cost(cost.clone())
//!     .theta(theta)
//!     .bounds(bounds)
//!     .population(100)
//!     .winners(20)
//!     .build()?;
//! let bid = solver.bid_for(0.3)?;
//! assert!(bid.ask >= cost.value(bid.quality.as_slice(), 0.3));
//!
//! // The aggregator runs one auction round over submitted bids.
//! let auction = Auction::new(
//!     ScoringRule::new(scoring),
//!     1,
//!     SelectionRule::TopK,
//!     PricingRule::FirstPrice,
//! );
//! let outcome = auction.run(
//!     vec![SubmittedBid::new(NodeId(0), bid.quality.clone(), bid.ask)],
//!     &mut fmore_numerics::seeded_rng(1),
//! )?;
//! assert_eq!(outcome.winners().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod equilibrium;
pub mod error;
pub mod game;
pub mod mechanism;
pub mod pricing;
pub mod properties;
pub mod scoring;
pub mod store;
pub mod types;
pub mod walkthrough;
pub mod winner;

pub use cost::{CostFunction, LinearCost, QuadraticCost};
pub use equilibrium::{EquilibriumBid, EquilibriumSolver, EquilibriumSolverBuilder, PaymentMethod};
pub use error::AuctionError;
pub use game::{game_statistics, psi_rank_spread, GameConfig, GameStatistics, RankSpreadCounts};
pub use mechanism::{AdmissionPlan, Auction, AuctionOutcome, Award, SubmittedBid};
pub use pricing::PricingRule;
pub use scoring::{
    Additive, CobbDouglas, NormalizedScoring, PerfectComplementary, ScoringFunction, ScoringRule,
};
pub use store::{
    BidSelector, BidStore, Candidate, RankRefiner, RankedCandidates, ScoreHistogram,
    ShardSelection, StandingPool, TieBreak,
};
pub use types::{NodeId, Quality, ScoredBid};
pub use winner::SelectionRule;

/// Convenient glob import of the most commonly used items.
pub mod prelude {
    pub use crate::cost::{CostFunction, LinearCost, QuadraticCost};
    pub use crate::equilibrium::{EquilibriumBid, EquilibriumSolver, PaymentMethod};
    pub use crate::error::AuctionError;
    pub use crate::mechanism::{Auction, AuctionOutcome, Award, SubmittedBid};
    pub use crate::pricing::PricingRule;
    pub use crate::scoring::{
        Additive, CobbDouglas, NormalizedScoring, PerfectComplementary, ScoringFunction,
        ScoringRule,
    };
    pub use crate::types::{NodeId, Quality, ScoredBid};
    pub use crate::winner::SelectionRule;
}
