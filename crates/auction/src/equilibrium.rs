//! Nash-equilibrium bidding strategies (Section IV of the paper).
//!
//! Every edge node maps its private cost parameter θ to a bid `(q*, p*)`:
//!
//! * **Quality** (Che's Theorem 1, Proposition 3): `q*(θ) = argmax_q s(q) − c(q, θ)`,
//!   independent of the payment and of the other bidders.
//! * **Payment** (the paper's Theorem 1): with the maximum attainable score
//!   `u(θ) = s(q*(θ)) − c(q*(θ), θ)`, the opponent-score CDF `H(x) = 1 − F(u⁻¹(x))`, and the
//!   winning probability `g(u) = Σ_{i=1}^{K} [1−H(u)]^{i−1} [H(u)]^{N−i}`, the equilibrium
//!   payment is `p*(θ) = c(q*, θ) + ∫₀ᵘ g(x) dx / g(u)`.
//!
//! The integral can be evaluated directly by quadrature or — as the paper's Algorithm 1
//! proposes — by integrating the equivalent first-order ODE `b'(u) + φ(u) b(u) = u φ(u)` with
//! the Euler method. Both are provided ([`PaymentMethod`]), plus the closed-form benchmarks of
//! Che's Theorem 2 (one winner) and Proposition 1 (two winners).

use crate::cost::CostFunction;
use crate::error::AuctionError;
use crate::mechanism::SubmittedBid;
use crate::scoring::ScoringFunction;
use crate::types::{NodeId, Quality};
use fmore_numerics::distribution::Distribution1D;
use fmore_numerics::optimize::maximize_coordinate;
use fmore_numerics::quadrature::{cumulative_trapezoid, trapezoid};
use std::sync::Arc;

/// Default number of θ grid points used to tabulate the equilibrium.
const DEFAULT_GRID: usize = 512;
/// Default number of coordinate-ascent sweeps for the quality choice.
const DEFAULT_SWEEPS: usize = 6;

/// How the equilibrium payment integral is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PaymentMethod {
    /// Direct composite-trapezoid quadrature of `∫₀ᵘ g(x) dx / g(u)` (default, most accurate).
    #[default]
    Quadrature,
    /// Forward-Euler integration of the first-order ODE from the paper's proof of Theorem 1
    /// — the method Algorithm 1 runs on every edge node.
    Euler {
        /// Number of Euler steps over the score range.
        steps: usize,
    },
    /// The closed-form integral of Che's Theorem 2 / Proposition 1. Only available for
    /// `K ∈ {1, 2}`; selecting it for larger `K` yields a build error.
    CheClosedForm,
}

/// The Nash-equilibrium bid of a node with a given private cost parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct EquilibriumBid {
    /// Equilibrium quality vector `q*(θ)`.
    pub quality: Quality,
    /// Equilibrium payment ask `p*(θ)`.
    pub ask: f64,
    /// Maximum attainable score `u(θ) = s(q*) − c(q*, θ)`; this is also the score the
    /// aggregator will compute for the bid, since `S(q*, p*) = s(q*) − p*` differs from `u`
    /// only by the information rent.
    pub max_score: f64,
    /// Score the aggregator will assign: `S(q*, p*) = s(q*) − p*`.
    pub score: f64,
    /// Probability of winning at this score, `g(u)`.
    pub win_probability: f64,
    /// Expected profit `(p* − c(q*, θ)) · g(u)`.
    pub expected_profit: f64,
}

/// Bounded-support model of θ with a tabulated CDF.
///
/// The solver stores this instead of a generic distribution so it stays object-safe,
/// cloneable, and cheap to share across clients.
#[derive(Debug, Clone)]
struct ThetaModel {
    lo: f64,
    hi: f64,
    /// `cdf[i] = F(lo + i·(hi−lo)/(len−1))`.
    cdf: Vec<f64>,
}

impl ThetaModel {
    fn from_distribution<D: Distribution1D>(dist: &D, grid: usize) -> Self {
        let lo = dist.lower();
        let hi = dist.upper();
        let grid = grid.max(8);
        let cdf = (0..grid)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (grid - 1) as f64;
                dist.cdf(x).clamp(0.0, 1.0)
            })
            .collect();
        Self { lo, hi, cdf }
    }

    fn cdf(&self, theta: f64) -> f64 {
        if theta <= self.lo {
            return 0.0;
        }
        if theta >= self.hi {
            return 1.0;
        }
        let t = (theta - self.lo) / (self.hi - self.lo) * (self.cdf.len() - 1) as f64;
        let idx = t.floor() as usize;
        let frac = t - idx as f64;
        if idx + 1 >= self.cdf.len() {
            return self.cdf[self.cdf.len() - 1];
        }
        self.cdf[idx] + frac * (self.cdf[idx + 1] - self.cdf[idx])
    }
}

/// Builder for [`EquilibriumSolver`].
///
/// # Example
///
/// ```
/// use fmore_auction::prelude::*;
/// use fmore_numerics::UniformDist;
///
/// let solver = EquilibriumSolver::builder()
///     .scoring(Additive::new(vec![1.0, 1.0])?)
///     .cost(QuadraticCost::new(vec![1.0, 1.0])?)
///     .theta(UniformDist::new(0.1, 1.0)?)
///     .bounds(vec![(0.0, 2.0), (0.0, 2.0)])
///     .population(50)
///     .winners(5)
///     .build()?;
/// let bid = solver.bid_for(0.4)?;
/// assert!(bid.expected_profit >= 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EquilibriumSolverBuilder {
    scoring: Option<Arc<dyn ScoringFunction>>,
    cost: Option<Arc<dyn CostFunction>>,
    theta: Option<ThetaModel>,
    bounds: Vec<(f64, f64)>,
    n: usize,
    k: usize,
    payment_method: PaymentMethod,
    grid: usize,
    sweeps: usize,
}

impl std::fmt::Debug for EquilibriumSolverBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EquilibriumSolverBuilder")
            .field("n", &self.n)
            .field("k", &self.k)
            .field("grid", &self.grid)
            .field("payment_method", &self.payment_method)
            .finish()
    }
}

impl Default for EquilibriumSolverBuilder {
    fn default() -> Self {
        Self {
            scoring: None,
            cost: None,
            theta: None,
            bounds: Vec::new(),
            n: 0,
            k: 0,
            payment_method: PaymentMethod::default(),
            grid: DEFAULT_GRID,
            sweeps: DEFAULT_SWEEPS,
        }
    }
}

impl EquilibriumSolverBuilder {
    /// Sets the scoring function `s(q)` broadcast by the aggregator.
    pub fn scoring<S: ScoringFunction + 'static>(mut self, s: S) -> Self {
        self.scoring = Some(Arc::new(s));
        self
    }

    /// Sets the node's private cost function `c(q, θ)`.
    pub fn cost<C: CostFunction + 'static>(mut self, c: C) -> Self {
        self.cost = Some(Arc::new(c));
        self
    }

    /// Sets the distribution of the private cost parameter θ (the CDF `F` every node learned
    /// from historical data).
    pub fn theta<D: Distribution1D>(mut self, dist: D) -> Self {
        self.theta = Some(ThetaModel::from_distribution(&dist, 2048));
        self
    }

    /// Sets the per-resource quality bounds the node can feasibly provide.
    pub fn bounds(mut self, bounds: Vec<(f64, f64)>) -> Self {
        self.bounds = bounds;
        self
    }

    /// Sets the total number of competing nodes `N`.
    pub fn population(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Sets the number of auction winners `K`.
    pub fn winners(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Selects how the payment integral is evaluated (default: quadrature).
    pub fn payment_method(mut self, method: PaymentMethod) -> Self {
        self.payment_method = method;
        self
    }

    /// Sets the θ tabulation grid size (default 512, minimum 16).
    pub fn grid_size(mut self, grid: usize) -> Self {
        self.grid = grid.max(16);
        self
    }

    /// Builds the solver, tabulating the equilibrium over the θ support.
    ///
    /// # Errors
    ///
    /// * [`AuctionError::InvalidParameter`] if a component is missing or bounds are invalid,
    /// * [`AuctionError::DimensionMismatch`] if scoring, cost, and bounds disagree on `m`,
    /// * [`AuctionError::InvalidGame`] if `K = 0`, `N = 0`, or `K > N`, or if
    ///   [`PaymentMethod::CheClosedForm`] is requested with `K > 2`.
    pub fn build(self) -> Result<EquilibriumSolver, AuctionError> {
        let scoring = self
            .scoring
            .ok_or_else(|| AuctionError::InvalidParameter("scoring function not set".into()))?;
        let cost = self
            .cost
            .ok_or_else(|| AuctionError::InvalidParameter("cost function not set".into()))?;
        let theta = self
            .theta
            .ok_or_else(|| AuctionError::InvalidParameter("theta distribution not set".into()))?;
        if self.bounds.is_empty() {
            return Err(AuctionError::InvalidParameter(
                "quality bounds not set".into(),
            ));
        }
        if scoring.dims() != self.bounds.len() {
            return Err(AuctionError::DimensionMismatch {
                expected: scoring.dims(),
                actual: self.bounds.len(),
            });
        }
        if cost.dims() != self.bounds.len() {
            return Err(AuctionError::DimensionMismatch {
                expected: cost.dims(),
                actual: self.bounds.len(),
            });
        }
        if self
            .bounds
            .iter()
            .any(|&(lo, hi)| !lo.is_finite() || !hi.is_finite() || hi < lo || lo < 0.0)
        {
            return Err(AuctionError::InvalidParameter(
                "quality bounds must be finite, non-negative, and ordered".into(),
            ));
        }
        if self.n == 0 || self.k == 0 || self.k > self.n {
            return Err(AuctionError::InvalidGame {
                n: self.n,
                k: self.k,
            });
        }
        if matches!(self.payment_method, PaymentMethod::CheClosedForm) && self.k > 2 {
            return Err(AuctionError::InvalidParameter(
                "Che closed form is only available for K = 1 or K = 2".into(),
            ));
        }
        if let PaymentMethod::Euler { steps } = self.payment_method {
            if steps == 0 {
                return Err(AuctionError::InvalidParameter(
                    "Euler steps must be > 0".into(),
                ));
            }
        }

        let mut solver = EquilibriumSolver {
            scoring,
            cost,
            theta,
            bounds: self.bounds,
            n: self.n,
            k: self.k,
            payment_method: self.payment_method,
            sweeps: self.sweeps,
            thetas: Vec::new(),
            qualities: Vec::new(),
            u_values: Vec::new(),
            u_grid: Vec::new(),
            g_grid: Vec::new(),
            g_cumulative: Vec::new(),
            payments: Vec::new(),
            flat_qualities: Vec::new(),
        };
        solver.tabulate(self.grid)?;
        Ok(solver)
    }
}

/// Precomputed Nash-equilibrium bidding strategy for one auction configuration
/// (scoring rule, cost family, θ distribution, quality bounds, `N`, `K`).
///
/// A single solver is shared by all nodes that face the same configuration; each node then
/// obtains its own bid with [`EquilibriumSolver::bid_for`] using its private θ.
#[derive(Clone)]
pub struct EquilibriumSolver {
    scoring: Arc<dyn ScoringFunction>,
    cost: Arc<dyn CostFunction>,
    theta: ThetaModel,
    bounds: Vec<(f64, f64)>,
    n: usize,
    k: usize,
    payment_method: PaymentMethod,
    sweeps: usize,
    /// Ascending θ grid.
    thetas: Vec<f64>,
    /// `q*(θ_i)` for every grid point.
    qualities: Vec<Vec<f64>>,
    /// `u(θ_i) = s(q*) − c(q*, θ_i)`, non-increasing in θ.
    u_values: Vec<f64>,
    /// Ascending score grid spanning `[u_min, u_max]`.
    u_grid: Vec<f64>,
    /// `g(u)` on the score grid.
    g_grid: Vec<f64>,
    /// `∫_{u_min}^{u} g(x) dx` on the score grid.
    g_cumulative: Vec<f64>,
    /// `p*(θ_i)` for every θ grid point — the equilibrium ask table behind the O(1)
    /// population-scale bid path ([`EquilibriumSolver::tabulated_ask`]).
    payments: Vec<f64>,
    /// Row-major copy of `qualities` (`grid × dims`, stride `bounds.len()`): adjacent grid
    /// rows share cache lines, so the per-bid interpolation in
    /// [`EquilibriumSolver::tabulated_bid_into`] reads two contiguous slices instead of
    /// chasing two heap-separated row pointers. Same values, purely a layout twin.
    flat_qualities: Vec<f64>,
}

impl std::fmt::Debug for EquilibriumSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EquilibriumSolver")
            .field("scoring", &self.scoring.name())
            .field("cost", &self.cost.name())
            .field("n", &self.n)
            .field("k", &self.k)
            .field("payment_method", &self.payment_method)
            .field("grid", &self.thetas.len())
            .finish()
    }
}

impl EquilibriumSolver {
    /// Starts building a solver.
    pub fn builder() -> EquilibriumSolverBuilder {
        EquilibriumSolverBuilder::default()
    }

    /// Total number of competing nodes `N`.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Number of winners `K`.
    pub fn winners(&self) -> usize {
        self.k
    }

    /// The θ support `[θ̲, θ̄]`.
    pub fn theta_support(&self) -> (f64, f64) {
        (self.theta.lo, self.theta.hi)
    }

    /// The quality bounds the strategy optimises over.
    pub fn bounds(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    fn tabulate(&mut self, grid: usize) -> Result<(), AuctionError> {
        let (lo, hi) = (self.theta.lo, self.theta.hi);
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi || lo <= 0.0 {
            return Err(AuctionError::InvalidParameter(format!(
                "theta support [{lo}, {hi}] must satisfy 0 < lo < hi < inf"
            )));
        }
        self.thetas = (0..grid)
            .map(|i| lo + (hi - lo) * i as f64 / (grid - 1) as f64)
            .collect();
        self.qualities = Vec::with_capacity(grid);
        self.u_values = Vec::with_capacity(grid);
        for &theta in &self.thetas {
            let (q, u) = self.quality_choice(theta);
            self.qualities.push(q);
            self.u_values.push(u);
        }
        // u(θ) must be non-increasing (envelope theorem); enforce monotonicity against tiny
        // numerical wobbles so the inverse interpolation below is well-defined.
        for i in 1..self.u_values.len() {
            if self.u_values[i] > self.u_values[i - 1] {
                self.u_values[i] = self.u_values[i - 1];
            }
        }

        // Score grid for g(u) and its cumulative integral.
        let u_min = *self.u_values.last().unwrap();
        let u_max = self.u_values[0];
        let points = 512.max(grid);
        if (u_max - u_min).abs() < 1e-15 {
            // Degenerate: all types earn the same maximum score (e.g. cost independent of θ).
            self.u_grid = vec![u_min, u_max + 1e-12];
            self.g_grid = vec![1.0, 1.0];
            self.g_cumulative = vec![0.0, 0.0];
            return self.tabulate_payments();
        }
        self.u_grid = (0..points)
            .map(|i| u_min + (u_max - u_min) * i as f64 / (points - 1) as f64)
            .collect();
        self.g_grid = self
            .u_grid
            .iter()
            .map(|&u| self.win_probability_at(u))
            .collect();
        self.g_cumulative = cumulative_trapezoid(&self.u_grid, &self.g_grid)?;
        self.tabulate_payments()
    }

    /// Fills the `p*(θ_i)` table once the rent machinery exists. At grid points the tabled
    /// value equals [`EquilibriumSolver::payment_for`] exactly (same `q*(θ_i)` and the same
    /// rent); between grid points [`EquilibriumSolver::tabulated_ask`] interpolates
    /// linearly.
    fn tabulate_payments(&mut self) -> Result<(), AuctionError> {
        let mut payments = Vec::with_capacity(self.thetas.len());
        for i in 0..self.thetas.len() {
            let theta = self.thetas[i];
            let u = self.u_values[i];
            let c = self.cost.value(&self.qualities[i], theta);
            payments.push(c + self.rent_for(theta, u)?);
        }
        self.payments = payments;
        self.flat_qualities = self.qualities.iter().flatten().copied().collect();
        Ok(())
    }

    /// Che's Theorem 1 quality choice: `q*(θ) = argmax_q s(q) − c(q, θ)`.
    ///
    /// Returns the maximiser and the maximum value `u(θ)`.
    pub fn quality_choice(&self, theta: f64) -> (Vec<f64>, f64) {
        let scoring = &self.scoring;
        let cost = &self.cost;
        let (q, u) = maximize_coordinate(
            |q| scoring.value(q) - cost.value(q, theta),
            &self.bounds,
            self.sweeps,
        );
        (q, u)
    }

    #[inline(always)]
    fn check_theta(&self, theta: f64) -> Result<(), AuctionError> {
        if !theta.is_finite() || theta < self.theta.lo - 1e-12 || theta > self.theta.hi + 1e-12 {
            return Err(AuctionError::ThetaOutOfSupport {
                theta,
                lo: self.theta.lo,
                hi: self.theta.hi,
            });
        }
        Ok(())
    }

    /// The maximum attainable score `u(θ)` (interpolated from the tabulated equilibrium).
    pub fn max_score(&self, theta: f64) -> Result<f64, AuctionError> {
        self.check_theta(theta)?;
        Ok(self.interp_theta(&self.u_values, theta))
    }

    #[inline]
    fn interp_theta(&self, values: &[f64], theta: f64) -> f64 {
        let (idx, frac) = self.theta_grid_pos(theta);
        values[idx] + frac * (values[idx + 1] - values[idx])
    }

    /// Grid cell and interpolation fraction of θ on the tabulated grid.
    #[inline(always)]
    fn theta_grid_pos(&self, theta: f64) -> (usize, f64) {
        let (lo, hi) = (self.theta.lo, self.theta.hi);
        let theta = theta.clamp(lo, hi);
        let t = (theta - lo) / (hi - lo) * (self.thetas.len() - 1) as f64;
        let idx = (t.floor() as usize).min(self.thetas.len() - 2);
        (idx, t - idx as f64)
    }

    /// The equilibrium ask `p*(θ)` interpolated from the precomputed θ grid — `O(1)` per
    /// call, no optimisation and no quadrature.
    ///
    /// This is the population-scale twin of [`EquilibriumSolver::payment_for`]: exact at
    /// grid points, linear in between (error `O(grid⁻²)`), and cheap enough to price a
    /// million bidders per round. The exact path stays the default for the paper-fidelity
    /// simulators; the scale experiments and benches use this one.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::ThetaOutOfSupport`] for θ outside `[θ̲, θ̄]`.
    #[inline]
    pub fn tabulated_ask(&self, theta: f64) -> Result<f64, AuctionError> {
        self.check_theta(theta)?;
        Ok(self.interp_theta(&self.payments, theta))
    }

    /// The equilibrium quality `q*(θ)` interpolated from the precomputed θ grid and clipped
    /// component-wise to `capacity`, written into `out` (cleared first, capacity reused) —
    /// `O(m)` per call and allocation-free in steady state.
    ///
    /// The population-scale twin of [`EquilibriumSolver::capped_bid`]'s quality choice.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::ThetaOutOfSupport`] for θ outside the support and
    /// [`AuctionError::DimensionMismatch`] when `capacity` has the wrong dimension.
    #[inline]
    pub fn tabulated_quality_into(
        &self,
        theta: f64,
        capacity: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<(), AuctionError> {
        let (idx, frac) = self.checked_grid_pos(theta, capacity)?;
        self.clipped_quality_at(idx, frac, capacity, out);
        Ok(())
    }

    /// Validates θ and the capacity dimension, returning the shared grid position both
    /// tabulated lookups interpolate from.
    #[inline(always)]
    fn checked_grid_pos(&self, theta: f64, capacity: &[f64]) -> Result<(usize, f64), AuctionError> {
        self.check_theta(theta)?;
        if capacity.len() != self.bounds.len() {
            return Err(AuctionError::DimensionMismatch {
                expected: self.bounds.len(),
                actual: capacity.len(),
            });
        }
        Ok(self.theta_grid_pos(theta))
    }

    /// Interpolates `q*(θ)` at a grid position and clips it component-wise to `capacity`,
    /// writing into `out` (cleared first, capacity reused) — the single implementation
    /// behind [`EquilibriumSolver::tabulated_quality_into`] and
    /// [`EquilibriumSolver::tabulated_bid_into`].
    #[inline(always)]
    fn clipped_quality_at(&self, idx: usize, frac: f64, capacity: &[f64], out: &mut Vec<f64>) {
        out.clear();
        self.clipped_quality_append(idx, frac, capacity, out);
    }

    /// Append-style core of [`EquilibriumSolver::clipped_quality_at`]: writes the clipped
    /// interpolation onto the end of `out` without clearing — the form that lets the bid
    /// loop stream qualities straight onto a columnar store.
    #[inline(always)]
    fn clipped_quality_append(&self, idx: usize, frac: f64, capacity: &[f64], out: &mut Vec<f64>) {
        let dims = capacity.len();
        // Two adjacent rows of the row-major table — one contiguous window, no pointer
        // chasing; the zipped iterators make every bounds check vanish.
        let window = &self.flat_qualities[idx * dims..(idx + 2) * dims];
        let (lo_q, hi_q) = window.split_at(dims);
        out.extend(
            lo_q.iter()
                .zip(hi_q)
                .zip(capacity)
                .map(|((&l, &h), &c)| (l + frac * (h - l)).min(c).max(0.0)),
        );
    }

    /// One whole tabulated equilibrium bid — capacity-capped quality into `out` plus the
    /// returned ask — from a **single** θ-grid lookup shared by both interpolations, where
    /// the [`EquilibriumSolver::tabulated_quality_into`] + [`EquilibriumSolver::tabulated_ask`]
    /// pair pays for two support checks and two grid positions. This is the per-node step
    /// of the population-scale bid-generation path; results are bit-identical to calling
    /// the pair.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::ThetaOutOfSupport`] for θ outside the support and
    /// [`AuctionError::DimensionMismatch`] when `capacity` has the wrong dimension.
    #[inline(always)]
    pub fn tabulated_bid_into(
        &self,
        theta: f64,
        capacity: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<f64, AuctionError> {
        let (idx, frac) = self.checked_grid_pos(theta, capacity)?;
        self.clipped_quality_at(idx, frac, capacity, out);
        // Same linear form as `interp_theta`, reusing the already-computed grid position.
        let p = &self.payments[idx..idx + 2];
        Ok(p[0] + frac * (p[1] - p[0]))
    }

    /// Streaming twin of [`EquilibriumSolver::tabulated_bid_into`]: **appends** the
    /// capacity-capped quality to `out` instead of clearing it first, so a columnar bid
    /// store can hand its flattened quality column directly to the solver and skip the
    /// per-bid scratch-buffer copy. Values are bit-identical to the `_into` form. On error
    /// nothing is written.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::ThetaOutOfSupport`] for θ outside the support and
    /// [`AuctionError::DimensionMismatch`] when `capacity` has the wrong dimension.
    #[inline(always)]
    pub fn tabulated_bid_append(
        &self,
        theta: f64,
        capacity: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<f64, AuctionError> {
        let (idx, frac) = self.checked_grid_pos(theta, capacity)?;
        self.clipped_quality_append(idx, frac, capacity, out);
        let p = &self.payments[idx..idx + 2];
        Ok(p[0] + frac * (p[1] - p[0]))
    }

    /// Batched twin of the θ grid lookup shared by every tabulated interpolation:
    /// validates all θ values and writes each one's grid cell (as an exact
    /// integer-valued `f64`) and interpolation fraction. The loop body is straight-line
    /// IEEE-exact arithmetic — `clamp`, the support mapping, `floor`, `min` — compiled
    /// under the runtime SIMD tiers, so the per-θ divide and floor vectorise across
    /// lanes while staying bit-identical to the scalar grid lookup.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::ThetaOutOfSupport`] for the first θ outside `[θ̲, θ̄]`
    /// (including non-finite values); `idx`/`frac` contents are unspecified on error.
    ///
    /// # Panics
    ///
    /// Panics when `idx` or `frac` is not the same length as `thetas`.
    pub fn grid_pos_batch(
        &self,
        thetas: &[f64],
        idx: &mut [f64],
        frac: &mut [f64],
    ) -> Result<(), AuctionError> {
        assert_eq!(thetas.len(), idx.len());
        assert_eq!(thetas.len(), frac.len());
        #[cfg(target_arch = "x86_64")]
        let all_ok = if fmore_numerics::avx512_enabled() {
            // SAFETY: the AVX-512 gate just confirmed the F/DQ/VL subsets at runtime.
            unsafe { grid_pos_batch_avx512(self, thetas, idx, frac) }
        } else if fmore_numerics::avx_enabled() {
            // SAFETY: the AVX gate just confirmed the feature at runtime.
            unsafe { grid_pos_batch_avx(self, thetas, idx, frac) }
        } else {
            self.grid_pos_batch_core(thetas, idx, frac)
        };
        #[cfg(not(target_arch = "x86_64"))]
        let all_ok = self.grid_pos_batch_core(thetas, idx, frac);
        if !all_ok {
            for &theta in thetas {
                self.check_theta(theta)?;
            }
        }
        Ok(())
    }

    /// The generic loop behind [`EquilibriumSolver::grid_pos_batch`]; `inline(always)` so
    /// each `target_feature` wrapper compiles the whole body under its instruction set.
    /// Returns whether every θ passed the support check (branch-free accumulation so the
    /// loop stays vectorisable; the caller rescans scalar on failure for the exact error).
    #[inline(always)]
    fn grid_pos_batch_core(&self, thetas: &[f64], idx: &mut [f64], frac: &mut [f64]) -> bool {
        let (lo, hi) = (self.theta.lo, self.theta.hi);
        let scale = (self.thetas.len() - 1) as f64;
        let last = (self.thetas.len() - 2) as f64;
        let mut all_ok = true;
        for j in 0..thetas.len() {
            let theta = thetas[j];
            // NaN fails both comparisons and ±∞ fails one, so this is `check_theta`'s
            // predicate exactly (finiteness included), accumulated without branching.
            all_ok &= (theta >= lo - 1e-12) & (theta <= hi + 1e-12);
            // Same operations in the same order as `theta_grid_pos`; `min` against the
            // last interior cell replaces the usize `min` bit-for-bit (both operands are
            // exact small integers).
            let t = (theta.clamp(lo, hi) - lo) / (hi - lo) * scale;
            let i = t.floor().min(last);
            idx[j] = i;
            frac[j] = t - i;
        }
        all_ok
    }

    /// [`EquilibriumSolver::tabulated_bid_append`] with the θ grid position precomputed
    /// by [`EquilibriumSolver::grid_pos_batch`] — the per-node remainder of the batched
    /// population bid loop. `idx` must be a cell index the batch lookup produced for this
    /// solver (always in range for its grid).
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::DimensionMismatch`] when `capacity` has the wrong
    /// dimension; nothing is written on error.
    #[inline(always)]
    pub fn tabulated_bid_append_at(
        &self,
        idx: usize,
        frac: f64,
        capacity: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<f64, AuctionError> {
        if capacity.len() != self.bounds.len() {
            return Err(AuctionError::DimensionMismatch {
                expected: self.bounds.len(),
                actual: capacity.len(),
            });
        }
        self.clipped_quality_append(idx, frac, capacity, out);
        let p = &self.payments[idx..idx + 2];
        Ok(p[0] + frac * (p[1] - p[0]))
    }

    /// The opponent-score CDF `H(x) = 1 − F(u⁻¹(x))`.
    pub fn opponent_score_cdf(&self, x: f64) -> f64 {
        let u_min = *self.u_values.last().unwrap();
        let u_max = self.u_values[0];
        if x <= u_min {
            return 0.0;
        }
        if x >= u_max {
            return 1.0;
        }
        // u is non-increasing over thetas; binary search for θ with u(θ) = x.
        let mut lo = 0usize;
        let mut hi = self.u_values.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.u_values[mid] >= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (u_hi, u_lo) = (self.u_values[lo], self.u_values[hi]);
        let (t_lo, t_hi) = (self.thetas[lo], self.thetas[hi]);
        let frac = if (u_hi - u_lo).abs() < 1e-15 {
            0.0
        } else {
            (u_hi - x) / (u_hi - u_lo)
        };
        let theta_inv = t_lo + frac * (t_hi - t_lo);
        (1.0 - self.theta.cdf(theta_inv)).clamp(0.0, 1.0)
    }

    /// The paper's winning probability `g(u) = Σ_{i=1}^{K} [1−H(u)]^{i−1} [H(u)]^{N−i}`
    /// (Theorem 1, Eq. 9).
    pub fn win_probability_at(&self, u: f64) -> f64 {
        let h = self.opponent_score_cdf(u);
        let mut sum = 0.0;
        for i in 1..=self.k {
            sum += (1.0 - h).powi(i as i32 - 1) * h.powi((self.n - i) as i32);
        }
        sum.clamp(0.0, 1.0)
    }

    /// The exact rank-based winning probability
    /// `Pr{at most K−1 of the N−1 opponents beat u} = Σ_{i=0}^{K−1} C(N−1, i) [1−H]^i H^{N−1−i}`.
    ///
    /// The paper's Eq. 9 omits the binomial coefficients; this variant is provided for the
    /// ablation benchmarks comparing the two.
    pub fn win_probability_exact_at(&self, u: f64) -> f64 {
        let h = self.opponent_score_cdf(u);
        let n1 = self.n - 1;
        let mut sum = 0.0;
        let mut binom = 1.0_f64; // C(n-1, 0)
        for i in 0..self.k {
            if i > 0 {
                binom *= (n1 - i + 1) as f64 / i as f64;
            }
            sum += binom * (1.0 - h).powi(i as i32) * h.powi((n1 - i) as i32);
        }
        sum.clamp(0.0, 1.0)
    }

    /// The information rent `∫₀ᵘ g(x) dx / g(u)` at the node's own score `u(θ)`.
    fn information_rent(&self, u: f64) -> f64 {
        let g_u = self.interp_u(&self.g_grid, u);
        if g_u <= 1e-12 {
            return 0.0;
        }
        let integral = self.interp_u(&self.g_cumulative, u);
        integral / g_u
    }

    fn interp_u(&self, values: &[f64], u: f64) -> f64 {
        let u_min = self.u_grid[0];
        let u_max = *self.u_grid.last().unwrap();
        if u <= u_min {
            return values[0];
        }
        if u >= u_max {
            return *values.last().unwrap();
        }
        let t = (u - u_min) / (u_max - u_min) * (self.u_grid.len() - 1) as f64;
        let idx = (t.floor() as usize).min(self.u_grid.len() - 2);
        let frac = t - idx as f64;
        values[idx] + frac * (values[idx + 1] - values[idx])
    }

    /// Computes the equilibrium payment `p*(θ)` with the configured [`PaymentMethod`].
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::ThetaOutOfSupport`] for θ outside `[θ̲, θ̄]`.
    pub fn payment_for(&self, theta: f64) -> Result<f64, AuctionError> {
        self.check_theta(theta)?;
        let (q, u) = self.quality_choice(theta);
        let c = self.cost.value(&q, theta);
        Ok(c + self.rent_for(theta, u)?)
    }

    /// Information rent at `(θ, u(θ))` under the configured [`PaymentMethod`].
    fn rent_for(&self, theta: f64, u: f64) -> Result<f64, AuctionError> {
        Ok(match self.payment_method {
            PaymentMethod::Quadrature => self.information_rent(u),
            PaymentMethod::Euler { steps } => self.information_rent_euler(u, steps),
            PaymentMethod::CheClosedForm => self.che_closed_form_rent(theta)?,
        })
    }

    /// Information rent via the Euler ODE route of the paper (Algorithm 1, line 7):
    /// integrate `b'(u) = φ(u)(u − b(u))` with `φ(u) = g'(u)/g(u)` from `u_min` upwards, then
    /// the rent is `u − b(u)`.
    fn information_rent_euler(&self, u: f64, steps: usize) -> f64 {
        let u_min = self.u_grid[0];
        if u <= u_min {
            return 0.0;
        }
        let h = (u - u_min) / steps as f64;
        let mut b = u_min;
        let mut x = u_min;
        for _ in 0..steps {
            let g = self.interp_u(&self.g_grid, x).max(1e-12);
            let g_next = self.interp_u(&self.g_grid, x + h).max(1e-12);
            let phi = (g_next - g) / (h * g);
            b += h * phi * (x - b);
            x += h;
        }
        (u - b).max(0.0)
    }

    /// Information rent via Che's Theorem 2 (`K = 1`) or Proposition 1 (`K = 2`):
    /// `∫_θ^θ̄ c_θ(q*(t), t) ((1−F(t))/(1−F(θ)))^{N−K} dt`.
    fn che_closed_form_rent(&self, theta: f64) -> Result<f64, AuctionError> {
        let exponent = (self.n - self.k) as f64;
        let one_minus_f_theta = (1.0 - self.theta.cdf(theta)).max(1e-12);
        let hi = self.theta.hi;
        if theta >= hi {
            return Ok(0.0);
        }
        let integral = trapezoid(
            |t| {
                let q = self.interp_quality(t);
                let ratio = ((1.0 - self.theta.cdf(t)) / one_minus_f_theta).max(0.0);
                self.cost.dtheta(&q, t) * ratio.powf(exponent)
            },
            theta,
            hi,
            400,
        )?;
        Ok(integral)
    }

    fn interp_quality(&self, theta: f64) -> Vec<f64> {
        let dims = self.bounds.len();
        (0..dims)
            .map(|d| {
                let column: Vec<f64> = self.qualities.iter().map(|q| q[d]).collect();
                self.interp_theta(&column, theta)
            })
            .collect()
    }

    /// Computes the full Nash-equilibrium bid for a node with private parameter θ.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::ThetaOutOfSupport`] for θ outside `[θ̲, θ̄]`.
    pub fn bid_for(&self, theta: f64) -> Result<EquilibriumBid, AuctionError> {
        self.check_theta(theta)?;
        let (q, u) = self.quality_choice(theta);
        let c = self.cost.value(&q, theta);
        let ask = self.payment_for(theta)?;
        let win = self.win_probability_at(u);
        let s = self.scoring.value(&q);
        Ok(EquilibriumBid {
            quality: Quality::new(q),
            ask,
            max_score: u,
            score: s - ask,
            win_probability: win,
            expected_profit: (ask - c) * win,
        })
    }

    /// Expected equilibrium profit `π(θ) = (p* − c) · g(u)` of a node with parameter θ.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::ThetaOutOfSupport`] for θ outside `[θ̲, θ̄]`.
    pub fn expected_profit(&self, theta: f64) -> Result<f64, AuctionError> {
        Ok(self.bid_for(theta)?.expected_profit)
    }

    /// The sealed bid of a node whose realised capacity caps its declared quality: the
    /// equilibrium quality `q*(θ)` clipped component-wise to `capacity`, with the equilibrium
    /// payment ask `p*(θ)`.
    ///
    /// This is the single shared bid-construction path for every simulator in the workspace
    /// (FL clients, MEC nodes, and the pure auction games of Figs. 9b/10b) — a node cannot
    /// promise more data, categories, or hardware than it actually holds this round.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::ThetaOutOfSupport`] for θ outside `[θ̲, θ̄]`.
    pub fn capped_bid(
        &self,
        node: NodeId,
        theta: f64,
        capacity: &[f64],
    ) -> Result<SubmittedBid, AuctionError> {
        let (ideal, _) = self.quality_choice(theta);
        let declared: Vec<f64> = ideal
            .iter()
            .zip(capacity.iter())
            .map(|(want, have)| want.min(*have))
            .collect();
        let ask = self.payment_for(theta)?;
        Ok(SubmittedBid::new(node, Quality::new(declared), ask))
    }
}

/// AVX-compiled twin of [`EquilibriumSolver::grid_pos_batch_core`] — identical code under
/// `target_feature(enable = "avx")`, bit-identical results.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn grid_pos_batch_avx(
    solver: &EquilibriumSolver,
    thetas: &[f64],
    idx: &mut [f64],
    frac: &mut [f64],
) -> bool {
    solver.grid_pos_batch_core(thetas, idx, frac)
}

/// AVX-512-compiled twin of [`EquilibriumSolver::grid_pos_batch_core`] — 8-wide f64
/// lanes for the per-θ divide and floor, bit-identical results.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl")]
unsafe fn grid_pos_batch_avx512(
    solver: &EquilibriumSolver,
    thetas: &[f64],
    idx: &mut [f64],
    frac: &mut [f64],
) -> bool {
    solver.grid_pos_batch_core(thetas, idx, frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LinearCost, QuadraticCost};
    use crate::scoring::{Additive, CobbDouglas};
    use fmore_numerics::UniformDist;

    fn simple_solver(n: usize, k: usize, method: PaymentMethod) -> EquilibriumSolver {
        EquilibriumSolver::builder()
            .scoring(Additive::new(vec![1.0]).unwrap())
            .cost(QuadraticCost::new(vec![1.0]).unwrap())
            .theta(UniformDist::new(0.2, 1.0).unwrap())
            .bounds(vec![(0.0, 5.0)])
            .population(n)
            .winners(k)
            .payment_method(method)
            .grid_size(256)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_inputs() {
        // Missing components.
        assert!(EquilibriumSolver::builder().build().is_err());
        // K > N.
        let err = EquilibriumSolver::builder()
            .scoring(Additive::new(vec![1.0]).unwrap())
            .cost(LinearCost::new(vec![1.0]).unwrap())
            .theta(UniformDist::new(0.1, 1.0).unwrap())
            .bounds(vec![(0.0, 1.0)])
            .population(3)
            .winners(5)
            .build()
            .unwrap_err();
        assert!(matches!(err, AuctionError::InvalidGame { n: 3, k: 5 }));
        // Dimension mismatch between bounds and scoring.
        assert!(EquilibriumSolver::builder()
            .scoring(Additive::new(vec![1.0, 1.0]).unwrap())
            .cost(LinearCost::new(vec![1.0, 1.0]).unwrap())
            .theta(UniformDist::new(0.1, 1.0).unwrap())
            .bounds(vec![(0.0, 1.0)])
            .population(10)
            .winners(2)
            .build()
            .is_err());
        // Che closed form limited to K <= 2.
        assert!(EquilibriumSolver::builder()
            .scoring(Additive::new(vec![1.0]).unwrap())
            .cost(LinearCost::new(vec![1.0]).unwrap())
            .theta(UniformDist::new(0.1, 1.0).unwrap())
            .bounds(vec![(0.0, 1.0)])
            .population(10)
            .winners(3)
            .payment_method(PaymentMethod::CheClosedForm)
            .build()
            .is_err());
        // Euler with zero steps.
        assert!(EquilibriumSolver::builder()
            .scoring(Additive::new(vec![1.0]).unwrap())
            .cost(LinearCost::new(vec![1.0]).unwrap())
            .theta(UniformDist::new(0.1, 1.0).unwrap())
            .bounds(vec![(0.0, 1.0)])
            .population(10)
            .winners(2)
            .payment_method(PaymentMethod::Euler { steps: 0 })
            .build()
            .is_err());
    }

    #[test]
    fn quality_choice_matches_analytic_solution() {
        // s(q) = q, c(q, θ) = θ q² => q* = 1/(2θ), u = 1/(4θ).
        let solver = simple_solver(10, 1, PaymentMethod::Quadrature);
        for theta in [0.25, 0.5, 0.8] {
            let (q, u) = solver.quality_choice(theta);
            assert!(
                (q[0] - 1.0 / (2.0 * theta)).abs() < 1e-3,
                "theta={theta} q={:?}",
                q
            );
            assert!(
                (u - 1.0 / (4.0 * theta)).abs() < 1e-3,
                "theta={theta} u={u}"
            );
        }
    }

    #[test]
    fn quality_is_decreasing_in_theta() {
        let solver = simple_solver(20, 4, PaymentMethod::Quadrature);
        let (q_low, _) = solver.quality_choice(0.25);
        let (q_mid, _) = solver.quality_choice(0.5);
        let (q_high, _) = solver.quality_choice(0.95);
        assert!(q_low[0] > q_mid[0]);
        assert!(q_mid[0] > q_high[0]);
    }

    #[test]
    fn payment_covers_cost_and_is_ir() {
        let solver = simple_solver(30, 5, PaymentMethod::Quadrature);
        for theta in [0.2, 0.35, 0.5, 0.75, 1.0] {
            let bid = solver.bid_for(theta).unwrap();
            let c = QuadraticCost::new(vec![1.0])
                .unwrap()
                .value(bid.quality.as_slice(), theta);
            assert!(
                bid.ask >= c - 1e-9,
                "θ={theta}: ask {} below cost {c}",
                bid.ask
            );
            assert!(bid.expected_profit >= -1e-9);
        }
    }

    #[test]
    fn lower_theta_types_bid_higher_scores_and_win_more() {
        let solver = simple_solver(50, 10, PaymentMethod::Quadrature);
        let good = solver.bid_for(0.25).unwrap();
        let bad = solver.bid_for(0.9).unwrap();
        assert!(good.max_score > bad.max_score);
        assert!(good.win_probability >= bad.win_probability);
        assert!(good.expected_profit >= bad.expected_profit);
    }

    #[test]
    fn worst_type_earns_zero_profit() {
        let solver = simple_solver(40, 8, PaymentMethod::Quadrature);
        let bid = solver.bid_for(1.0).unwrap();
        assert!(bid.expected_profit.abs() < 1e-6);
    }

    #[test]
    fn opponent_score_cdf_is_monotone_and_bounded() {
        let solver = simple_solver(25, 5, PaymentMethod::Quadrature);
        let (u_lo, u_hi) = {
            let (_, u_best) = solver.quality_choice(0.2);
            let (_, u_worst) = solver.quality_choice(1.0);
            (u_worst, u_best)
        };
        assert_eq!(solver.opponent_score_cdf(u_lo - 1.0), 0.0);
        assert_eq!(solver.opponent_score_cdf(u_hi + 1.0), 1.0);
        let mut prev = 0.0;
        for i in 0..=20 {
            let x = u_lo + (u_hi - u_lo) * i as f64 / 20.0;
            let h = solver.opponent_score_cdf(x);
            assert!(h >= prev - 1e-9, "H must be non-decreasing");
            assert!((0.0..=1.0).contains(&h));
            prev = h;
        }
    }

    #[test]
    fn win_probability_increases_with_score() {
        let solver = simple_solver(25, 5, PaymentMethod::Quadrature);
        let low = solver.win_probability_at(solver.max_score(0.9).unwrap());
        let high = solver.win_probability_at(solver.max_score(0.3).unwrap());
        assert!(high >= low);
        // Exact variant is at least as large as the paper's approximation (binomial
        // coefficients are >= 1) and also in [0, 1].
        let u = solver.max_score(0.4).unwrap();
        let paper = solver.win_probability_at(u);
        let exact = solver.win_probability_exact_at(u);
        assert!(exact >= paper - 1e-12);
        assert!((0.0..=1.0).contains(&exact));
    }

    #[test]
    fn euler_and_quadrature_payments_agree() {
        // Compare in the region where the winning probability is non-negligible; in the far
        // tail (θ close to θ̄ with K/N small) g(u) underflows and the rent is numerically
        // irrelevant because such types never win.
        let quad = simple_solver(30, 6, PaymentMethod::Quadrature);
        let euler = simple_solver(30, 6, PaymentMethod::Euler { steps: 4000 });
        for theta in [0.25, 0.35, 0.45] {
            let p_q = quad.payment_for(theta).unwrap();
            let p_e = euler.payment_for(theta).unwrap();
            let denom = p_q.abs().max(1e-6);
            assert!(
                (p_q - p_e).abs() / denom < 0.05,
                "θ={theta}: quadrature {p_q} vs euler {p_e}"
            );
        }
    }

    #[test]
    fn quadrature_matches_che_closed_form_for_one_winner() {
        let quad = simple_solver(12, 1, PaymentMethod::Quadrature);
        let che = simple_solver(12, 1, PaymentMethod::CheClosedForm);
        for theta in [0.25, 0.5, 0.75] {
            let p_q = quad.payment_for(theta).unwrap();
            let p_c = che.payment_for(theta).unwrap();
            assert!(
                (p_q - p_c).abs() / p_c.max(1e-6) < 0.08,
                "θ={theta}: quadrature {p_q} vs Che {p_c}"
            );
        }
    }

    #[test]
    fn quadrature_matches_proposition1_for_two_winners() {
        let quad = simple_solver(12, 2, PaymentMethod::Quadrature);
        let che = simple_solver(12, 2, PaymentMethod::CheClosedForm);
        for theta in [0.3, 0.6] {
            let p_q = quad.payment_for(theta).unwrap();
            let p_c = che.payment_for(theta).unwrap();
            assert!(
                (p_q - p_c).abs() / p_c.max(1e-6) < 0.10,
                "θ={theta}: quadrature {p_q} vs Prop.1 {p_c}"
            );
        }
    }

    #[test]
    fn theorem2_profit_decreases_with_population() {
        // Expected profit is a decreasing function of N (paper Theorem 2).
        let theta = 0.4;
        let profits: Vec<f64> = [10, 20, 40, 80]
            .iter()
            .map(|&n| {
                simple_solver(n, 5, PaymentMethod::Quadrature)
                    .expected_profit(theta)
                    .unwrap()
            })
            .collect();
        for w in profits.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "profit should fall with N: {profits:?}"
            );
        }
    }

    #[test]
    fn theorem3_profit_increases_with_winner_count() {
        // Expected profit is an increasing function of K (paper Theorem 3).
        let theta = 0.4;
        let profits: Vec<f64> = [1, 5, 10, 20]
            .iter()
            .map(|&k| {
                simple_solver(40, k, PaymentMethod::Quadrature)
                    .expected_profit(theta)
                    .unwrap()
            })
            .collect();
        for w in profits.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "profit should rise with K: {profits:?}"
            );
        }
    }

    #[test]
    fn theta_out_of_support_is_rejected() {
        let solver = simple_solver(10, 2, PaymentMethod::Quadrature);
        assert!(matches!(
            solver.bid_for(5.0),
            Err(AuctionError::ThetaOutOfSupport { .. })
        ));
        assert!(solver.payment_for(0.05).is_err());
        assert!(solver.max_score(f64::NAN).is_err());
    }

    #[test]
    fn multidimensional_cobb_douglas_equilibrium_is_consistent() {
        // The simulator configuration: s(q1, q2) = 25 q1 q2 over [0,1]² with linear cost.
        let solver = EquilibriumSolver::builder()
            .scoring(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap())
            .cost(LinearCost::new(vec![10.0, 5.0]).unwrap())
            .theta(UniformDist::new(0.2, 1.0).unwrap())
            .bounds(vec![(0.0, 1.0), (0.0, 1.0)])
            .population(100)
            .winners(20)
            .grid_size(128)
            .build()
            .unwrap();
        let bid = solver.bid_for(0.5).unwrap();
        assert_eq!(bid.quality.dims(), 2);
        assert!(bid.quality.is_valid());
        assert!(bid.max_score > 0.0);
        assert!(bid.ask > 0.0);
        // Score reported to the aggregator never exceeds the node's maximum attainable score.
        assert!(bid.score <= bid.max_score + 1e-9);
        // Debug formatting mentions the configuration.
        let dbg = format!("{solver:?}");
        assert!(dbg.contains("cobb-douglas") && dbg.contains("n: 100"));
    }

    #[test]
    fn accessors_report_configuration() {
        let solver = simple_solver(15, 3, PaymentMethod::Quadrature);
        assert_eq!(solver.population(), 15);
        assert_eq!(solver.winners(), 3);
        let (lo, hi) = solver.theta_support();
        assert_eq!((lo, hi), (0.2, 1.0));
        assert_eq!(solver.bounds(), &[(0.0, 5.0)]);
    }
}
