//! Executable checks of the paper's mechanism-design guarantees (Section IV).
//!
//! The theorems and propositions of the paper are not just documented — each one is exposed
//! as a function the tests, property tests, and ablation benchmarks can run:
//!
//! * [`is_individually_rational`] — the IR constraint `π_i(q, p) ≥ 0`,
//! * [`incentive_compatibility_holds`] — Theorem 5: under-declaring quality can never raise a
//!   node's score (and hence its winning probability),
//! * [`social_surplus`] — the quantity maximised by a Pareto-efficient mechanism (Theorem 4),
//! * [`profit_decreases_with_population`] / [`profit_increases_with_winners`] — Theorems 2
//!   and 3,
//! * [`psi_preserves_win_probability_for_identical_types`] — Proposition 2,
//! * [`cobb_douglas_resource_ratio`] — the aggregator guidance of Proposition 4.

use crate::cost::CostFunction;
use crate::equilibrium::EquilibriumSolver;
use crate::error::AuctionError;
use crate::mechanism::Award;
use crate::scoring::ScoringFunction;
use crate::types::Quality;

/// Individual rationality: a node only participates when its profit `p − c(q, θ)` is
/// non-negative (Section III-A, bid collection).
pub fn is_individually_rational<C: CostFunction>(
    quality: &Quality,
    payment: f64,
    cost: &C,
    theta: f64,
) -> bool {
    match cost.evaluate(quality.as_slice(), theta) {
        Ok(c) => payment - c >= -1e-9,
        Err(_) => false,
    }
}

/// Theorem 5 (incentive compatibility): declaring a lower quality than the equilibrium
/// quality `q*` strictly lowers the bid's score and therefore its winning probability, so
/// misreporting cannot pay off.
///
/// `misreport_factors` are multiplicative down-scalings applied to `q*` (values in `(0, 1)`).
/// Returns `true` if, for every factor, the truthful score is at least the misreported score.
///
/// # Errors
///
/// Propagates errors from the equilibrium solver (e.g. θ outside the support).
pub fn incentive_compatibility_holds<S: ScoringFunction>(
    solver: &EquilibriumSolver,
    scoring: &S,
    theta: f64,
    misreport_factors: &[f64],
) -> Result<bool, AuctionError> {
    let truthful = solver.bid_for(theta)?;
    let truthful_score = scoring.evaluate(truthful.quality.as_slice())? - truthful.ask;
    for &factor in misreport_factors {
        if !(0.0..1.0).contains(&factor) {
            return Err(AuctionError::InvalidParameter(format!(
                "misreport factor {factor} must lie in (0, 1)"
            )));
        }
        let misreported = truthful.quality.scaled(factor);
        let misreported_score = scoring.evaluate(misreported.as_slice())? - truthful.ask;
        if misreported_score > truthful_score + 1e-9 {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Social surplus `SS = Σ_{i ∈ W} (s(q_i) − c(q_i, θ_i))` of an auction outcome
/// (Theorem 4). Pareto efficiency of FMore is equivalent to this quantity being maximised,
/// which holds because every winner's quality maximises `s(q) − c(q, θ)` individually.
///
/// `thetas[i]` must be the private parameter of the node that received `awards[i]`.
///
/// # Errors
///
/// Returns an error if the lengths differ or a quality vector has the wrong dimensions.
pub fn social_surplus<S: ScoringFunction, C: CostFunction>(
    awards: &[Award],
    thetas: &[f64],
    scoring: &S,
    cost: &C,
) -> Result<f64, AuctionError> {
    if awards.len() != thetas.len() {
        return Err(AuctionError::InvalidParameter(format!(
            "{} awards but {} theta values",
            awards.len(),
            thetas.len()
        )));
    }
    let mut total = 0.0;
    for (award, &theta) in awards.iter().zip(thetas) {
        total += scoring.evaluate(award.quality.as_slice())?
            - cost.evaluate(award.quality.as_slice(), theta)?;
    }
    Ok(total)
}

/// Theorem 2: the expected equilibrium profit of a fixed type θ is non-increasing in the
/// total number of nodes `N`. `solvers` must share every configuration parameter except `N`
/// and be ordered by increasing `N`.
///
/// # Errors
///
/// Propagates solver errors.
pub fn profit_decreases_with_population(
    solvers: &[EquilibriumSolver],
    theta: f64,
    tolerance: f64,
) -> Result<bool, AuctionError> {
    let mut profits = Vec::with_capacity(solvers.len());
    for s in solvers {
        profits.push(s.expected_profit(theta)?);
    }
    Ok(profits.windows(2).all(|w| w[1] <= w[0] + tolerance))
}

/// Theorem 3: the expected equilibrium profit of a fixed type θ is non-decreasing in the
/// number of winners `K`. `solvers` must share every configuration parameter except `K` and
/// be ordered by increasing `K`.
///
/// # Errors
///
/// Propagates solver errors.
pub fn profit_increases_with_winners(
    solvers: &[EquilibriumSolver],
    theta: f64,
    tolerance: f64,
) -> Result<bool, AuctionError> {
    let mut profits = Vec::with_capacity(solvers.len());
    for s in solvers {
        profits.push(s.expected_profit(theta)?);
    }
    Ok(profits.windows(2).all(|w| w[1] >= w[0] - tolerance))
}

/// Proposition 2: when all participators share the same private value θ (hence the same
/// score), selecting `K` of `N` with or without the per-node admission probability ψ leaves
/// each node's winning probability at `K/N`.
///
/// Returns the pair `(analytic, simulated)` winning probabilities for one node so tests can
/// assert they agree; the simulation runs `trials` ψ-FMore selections over `n` identically
/// scored nodes.
pub fn psi_preserves_win_probability_for_identical_types(
    n: usize,
    k: usize,
    psi: f64,
    trials: usize,
    seed: u64,
) -> (f64, f64) {
    use crate::types::{NodeId, ScoredBid};
    use crate::winner::SelectionRule;

    let analytic = k as f64 / n as f64;
    let bids: Vec<ScoredBid> = (0..n)
        .map(|i| ScoredBid {
            node: NodeId(i as u64),
            quality: Quality::default(),
            ask: 0.0,
            score: 1.0,
        })
        .collect();
    let rule = SelectionRule::PsiFMore { psi };
    let mut rng = fmore_numerics::seeded_rng(seed);
    let mut wins_node0 = 0usize;
    for _ in 0..trials {
        // Shuffle to model the random tie-break among identical scores, then select.
        let mut shuffled = bids.clone();
        fmore_numerics::rng::shuffle(&mut shuffled, &mut rng);
        let winners = rule.select(&shuffled, k, &mut rng);
        if winners.iter().any(|&idx| shuffled[idx].node == NodeId(0)) {
            wins_node0 += 1;
        }
    }
    (analytic, wins_node0 as f64 / trials.max(1) as f64)
}

/// Proposition 4: with Cobb–Douglas utility `s(q) = Π qi^αi` (`Σ αi = 1`) and additive cost
/// `c(q) = θ Σ β̃i qi`, the aggregator receives resources in the proportion
/// `q_i / q_j = (α_i / α_j) · (β̃_j / β̃_i)`.
///
/// Returns the matrix of optimal ratios `ratio[i][j] = q_i* / q_j*`.
///
/// # Errors
///
/// Returns [`AuctionError::InvalidParameter`] for empty or non-positive inputs or mismatched
/// lengths.
pub fn cobb_douglas_resource_ratio(
    alphas: &[f64],
    betas: &[f64],
) -> Result<Vec<Vec<f64>>, AuctionError> {
    if alphas.is_empty() || alphas.len() != betas.len() {
        return Err(AuctionError::InvalidParameter(
            "alpha and beta vectors must be non-empty and of equal length".into(),
        ));
    }
    if alphas
        .iter()
        .chain(betas.iter())
        .any(|v| !v.is_finite() || *v <= 0.0)
    {
        return Err(AuctionError::InvalidParameter(
            "alpha and beta coefficients must be positive".into(),
        ));
    }
    let m = alphas.len();
    let mut ratios = vec![vec![0.0; m]; m];
    for i in 0..m {
        for j in 0..m {
            ratios[i][j] = (alphas[i] / alphas[j]) * (betas[j] / betas[i]);
        }
    }
    Ok(ratios)
}

/// Solves the aggregator's Proposition-4 budget allocation directly: maximise
/// `Π qi^αi` subject to `θ Σ β̃i qi = budget`. The Lagrangian solution is
/// `q_i* = α_i · budget / (θ β̃_i Σ α)`, returned here so tests can confirm the ratio matrix.
///
/// # Errors
///
/// Same validation as [`cobb_douglas_resource_ratio`], plus positivity of `budget` and `theta`.
pub fn cobb_douglas_optimal_quantities(
    alphas: &[f64],
    betas: &[f64],
    theta: f64,
    budget: f64,
) -> Result<Vec<f64>, AuctionError> {
    if theta <= 0.0 || budget <= 0.0 || !theta.is_finite() || !budget.is_finite() {
        return Err(AuctionError::InvalidParameter(
            "theta and budget must be positive and finite".into(),
        ));
    }
    // Validate via the ratio helper.
    let _ = cobb_douglas_resource_ratio(alphas, betas)?;
    let alpha_sum: f64 = alphas.iter().sum();
    Ok(alphas
        .iter()
        .zip(betas)
        .map(|(a, b)| a * budget / (theta * b * alpha_sum))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LinearCost, QuadraticCost};
    use crate::equilibrium::{EquilibriumSolver, PaymentMethod};
    use crate::scoring::Additive;
    use crate::types::NodeId;
    use fmore_numerics::UniformDist;

    fn solver(n: usize, k: usize) -> EquilibriumSolver {
        EquilibriumSolver::builder()
            .scoring(Additive::new(vec![1.0]).unwrap())
            .cost(QuadraticCost::new(vec![1.0]).unwrap())
            .theta(UniformDist::new(0.2, 1.0).unwrap())
            .bounds(vec![(0.0, 5.0)])
            .population(n)
            .winners(k)
            .payment_method(PaymentMethod::Quadrature)
            .grid_size(128)
            .build()
            .unwrap()
    }

    #[test]
    fn equilibrium_bids_are_individually_rational() {
        let s = solver(30, 6);
        let cost = QuadraticCost::new(vec![1.0]).unwrap();
        for theta in [0.25, 0.5, 0.75, 1.0] {
            let bid = s.bid_for(theta).unwrap();
            assert!(is_individually_rational(
                &bid.quality,
                bid.ask,
                &cost,
                theta
            ));
        }
        // A payment below cost violates IR.
        let bid = s.bid_for(0.5).unwrap();
        assert!(!is_individually_rational(&bid.quality, 0.0, &cost, 0.5));
        // Dimension mismatch is treated as a violation rather than a panic.
        let bad_cost = QuadraticCost::new(vec![1.0, 1.0]).unwrap();
        assert!(!is_individually_rational(
            &bid.quality,
            bid.ask,
            &bad_cost,
            0.5
        ));
    }

    #[test]
    fn theorem5_incentive_compatibility() {
        let s = solver(50, 10);
        let scoring = Additive::new(vec![1.0]).unwrap();
        for theta in [0.3, 0.6, 0.9] {
            assert!(incentive_compatibility_holds(&s, &scoring, theta, &[0.5, 0.8, 0.95]).unwrap());
        }
        // Invalid misreport factors are rejected.
        assert!(incentive_compatibility_holds(&s, &scoring, 0.5, &[1.5]).is_err());
    }

    #[test]
    fn theorem4_winners_maximise_social_surplus() {
        let s = solver(20, 4);
        let scoring = Additive::new(vec![1.0]).unwrap();
        let cost = QuadraticCost::new(vec![1.0]).unwrap();
        let theta = 0.5;
        let bid = s.bid_for(theta).unwrap();
        let award = Award {
            node: NodeId(0),
            quality: bid.quality.clone(),
            score: bid.score,
            payment: bid.ask,
        };
        let optimal = social_surplus(&[award], &[theta], &scoring, &cost).unwrap();
        // Any other quality choice yields weakly lower surplus.
        for q in [0.1, 0.5, 1.5, 3.0, 5.0] {
            let alt = Award {
                node: NodeId(0),
                quality: Quality::new(vec![q]),
                score: 0.0,
                payment: 0.0,
            };
            let surplus = social_surplus(&[alt], &[theta], &scoring, &cost).unwrap();
            assert!(
                surplus <= optimal + 1e-6,
                "q={q} surplus {surplus} > optimal {optimal}"
            );
        }
        // Length mismatch is rejected.
        assert!(social_surplus(&[], &[0.5], &scoring, &cost).is_err());
    }

    #[test]
    fn theorem2_and_theorem3_monotonicity() {
        let by_n: Vec<EquilibriumSolver> = [10, 20, 40].iter().map(|&n| solver(n, 5)).collect();
        assert!(profit_decreases_with_population(&by_n, 0.4, 1e-6).unwrap());

        let by_k: Vec<EquilibriumSolver> = [2, 5, 10].iter().map(|&k| solver(30, k)).collect();
        assert!(profit_increases_with_winners(&by_k, 0.4, 1e-6).unwrap());
    }

    #[test]
    fn proposition2_psi_keeps_win_probability_for_identical_types() {
        let (analytic, simulated) =
            psi_preserves_win_probability_for_identical_types(20, 5, 0.6, 4000, 42);
        assert!((analytic - 0.25).abs() < 1e-12);
        assert!(
            (analytic - simulated).abs() < 0.03,
            "simulated {simulated} should match analytic {analytic}"
        );
    }

    #[test]
    fn proposition4_ratios_match_lagrangian_solution() {
        let alphas = [0.5, 0.3, 0.2];
        let betas = [0.2, 0.3, 0.5];
        let ratios = cobb_douglas_resource_ratio(&alphas, &betas).unwrap();
        let q = cobb_douglas_optimal_quantities(&alphas, &betas, 0.4, 10.0).unwrap();
        for i in 0..3 {
            assert!((ratios[i][i] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!(
                    (q[i] / q[j] - ratios[i][j]).abs() < 1e-9,
                    "ratio mismatch at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn proposition4_rejects_invalid_input() {
        assert!(cobb_douglas_resource_ratio(&[], &[]).is_err());
        assert!(cobb_douglas_resource_ratio(&[0.5], &[0.5, 0.5]).is_err());
        assert!(cobb_douglas_resource_ratio(&[-0.5, 0.5], &[0.5, 0.5]).is_err());
        assert!(cobb_douglas_optimal_quantities(&[0.5, 0.5], &[0.5, 0.5], 0.0, 1.0).is_err());
        assert!(cobb_douglas_optimal_quantities(&[0.5, 0.5], &[0.5, 0.5], 0.5, -1.0).is_err());
    }

    #[test]
    fn aggregator_can_steer_resource_mix_via_alphas() {
        // Doubling α1 relative to α2 doubles q1/q2 (with equal betas): the Proposition-4
        // guidance the aggregator uses to acquire the resources it actually needs.
        let base = cobb_douglas_optimal_quantities(&[0.5, 0.5], &[0.5, 0.5], 0.5, 10.0).unwrap();
        let skewed =
            cobb_douglas_optimal_quantities(&[2.0 / 3.0, 1.0 / 3.0], &[0.5, 0.5], 0.5, 10.0)
                .unwrap();
        let base_ratio = base[0] / base[1];
        let skewed_ratio = skewed[0] / skewed[1];
        assert!((skewed_ratio / base_ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn linear_cost_social_surplus_is_additive_across_winners() {
        let scoring = Additive::new(vec![1.0]).unwrap();
        let cost = LinearCost::new(vec![1.0]).unwrap();
        let mk = |q: f64| Award {
            node: NodeId(0),
            quality: Quality::new(vec![q]),
            score: 0.0,
            payment: 0.0,
        };
        let one = social_surplus(&[mk(2.0)], &[0.5], &scoring, &cost).unwrap();
        let two = social_surplus(&[mk(2.0), mk(2.0)], &[0.5, 0.5], &scoring, &cost).unwrap();
        assert!((two - 2.0 * one).abs() < 1e-12);
    }
}
