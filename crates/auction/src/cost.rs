//! Private cost functions `c(q, θ)`.
//!
//! Section III-A (bid collection) assumes each edge node has a private cost parameter θ and a
//! cost function `c(q1, …, qm, θ)` that is increasing in the qualities and satisfies the
//! single-crossing conditions `c_qq ≥ 0`, `c_qθ > 0`, `c_qqθ ≥ 0`. Proposition 4 additionally
//! analyses the additive cost `c(q, θ) = θ Σ βi qi`. Both the linear (additive) and a convex
//! quadratic cost family are provided, plus numerical single-crossing verification used by the
//! property tests.

use crate::error::AuctionError;

/// A private cost function `c(q, θ)`.
pub trait CostFunction: Send + Sync {
    /// Number of resource dimensions `m` the function expects.
    fn dims(&self) -> usize;

    /// Evaluates `c(q, θ)`.
    fn value(&self, q: &[f64], theta: f64) -> f64;

    /// Evaluates `∂c/∂θ (q, θ)`, needed by Che's Theorem 2 payment integral.
    fn dtheta(&self, q: &[f64], theta: f64) -> f64;

    /// Human-readable name used in experiment reports.
    fn name(&self) -> &'static str {
        "cost"
    }

    /// Evaluates `c(q, θ)` after validating dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::DimensionMismatch`] if `q` has the wrong number of dimensions.
    fn evaluate(&self, q: &[f64], theta: f64) -> Result<f64, AuctionError> {
        if q.len() != self.dims() {
            return Err(AuctionError::DimensionMismatch {
                expected: self.dims(),
                actual: q.len(),
            });
        }
        Ok(self.value(q, theta))
    }
}

fn validate_coefficients(beta: &[f64]) -> Result<(), AuctionError> {
    if beta.is_empty() {
        return Err(AuctionError::InvalidParameter(
            "cost coefficients must not be empty".into(),
        ));
    }
    if beta.iter().any(|b| !b.is_finite() || *b <= 0.0) {
        return Err(AuctionError::InvalidParameter(
            "cost coefficients must be finite and positive".into(),
        ));
    }
    Ok(())
}

/// The additive (linear) cost `c(q, θ) = θ Σ βi qi` analysed in Proposition 4.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearCost {
    beta: Vec<f64>,
}

impl LinearCost {
    /// Creates a linear cost function with per-resource coefficients `βi > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidParameter`] for empty or non-positive coefficients.
    pub fn new(beta: Vec<f64>) -> Result<Self, AuctionError> {
        validate_coefficients(&beta)?;
        Ok(Self { beta })
    }

    /// The per-resource cost coefficients `βi`.
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }
}

impl CostFunction for LinearCost {
    fn dims(&self) -> usize {
        self.beta.len()
    }
    fn value(&self, q: &[f64], theta: f64) -> f64 {
        theta * self.beta.iter().zip(q).map(|(b, x)| b * x).sum::<f64>()
    }
    fn dtheta(&self, q: &[f64], _theta: f64) -> f64 {
        self.beta.iter().zip(q).map(|(b, x)| b * x).sum()
    }
    fn name(&self) -> &'static str {
        "linear"
    }
}

/// A convex quadratic cost `c(q, θ) = θ Σ βi qi²`.
///
/// Strictly convex in quality, so the quality choice `argmax s(q) − c(q, θ)` of Che's
/// Theorem 1 has an interior solution even for additive scoring. Satisfies all three
/// single-crossing conditions (`c_qq = 2θβ ≥ 0`, `c_qθ = 2βq > 0` for `q > 0`,
/// `c_qqθ = 2β ≥ 0`).
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticCost {
    beta: Vec<f64>,
}

impl QuadraticCost {
    /// Creates a quadratic cost function with per-resource coefficients `βi > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`AuctionError::InvalidParameter`] for empty or non-positive coefficients.
    pub fn new(beta: Vec<f64>) -> Result<Self, AuctionError> {
        validate_coefficients(&beta)?;
        Ok(Self { beta })
    }

    /// The per-resource cost coefficients `βi`.
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }
}

impl CostFunction for QuadraticCost {
    fn dims(&self) -> usize {
        self.beta.len()
    }
    fn value(&self, q: &[f64], theta: f64) -> f64 {
        theta * self.beta.iter().zip(q).map(|(b, x)| b * x * x).sum::<f64>()
    }
    fn dtheta(&self, q: &[f64], _theta: f64) -> f64 {
        self.beta.iter().zip(q).map(|(b, x)| b * x * x).sum()
    }
    fn name(&self) -> &'static str {
        "quadratic"
    }
}

impl<C: CostFunction + ?Sized> CostFunction for std::sync::Arc<C> {
    fn dims(&self) -> usize {
        (**self).dims()
    }
    fn value(&self, q: &[f64], theta: f64) -> f64 {
        (**self).value(q, theta)
    }
    fn dtheta(&self, q: &[f64], theta: f64) -> f64 {
        (**self).dtheta(q, theta)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<C: CostFunction + ?Sized> CostFunction for &C {
    fn dims(&self) -> usize {
        (**self).dims()
    }
    fn value(&self, q: &[f64], theta: f64) -> f64 {
        (**self).value(q, theta)
    }
    fn dtheta(&self, q: &[f64], theta: f64) -> f64 {
        (**self).dtheta(q, theta)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Numerically checks the single-crossing conditions of Section III-A on a sample grid:
/// `c_qq ≥ 0`, `c_qθ > 0`, and `c_qqθ ≥ 0` for every dimension.
///
/// Returns `true` if all three hold (up to a small numerical tolerance) at every grid point.
/// Used by property tests to validate user-supplied cost functions before running
/// equilibrium computations.
pub fn satisfies_single_crossing<C: CostFunction>(
    cost: &C,
    bounds: &[(f64, f64)],
    theta_range: (f64, f64),
    grid: usize,
) -> bool {
    if bounds.len() != cost.dims() || grid < 2 {
        return false;
    }
    let eps_q: Vec<f64> = bounds
        .iter()
        .map(|(lo, hi)| (hi - lo).abs().max(1e-6) * 1e-4)
        .collect();
    let eps_t = (theta_range.1 - theta_range.0).abs().max(1e-6) * 1e-4;
    let tol: f64 = 1e-9;

    let grid_points = |lo: f64, hi: f64| -> Vec<f64> {
        (0..grid)
            .map(|i| lo + (hi - lo) * (i as f64 + 0.5) / grid as f64)
            .collect()
    };

    let thetas = grid_points(theta_range.0, theta_range.1);
    for dim in 0..cost.dims() {
        let qs = grid_points(bounds[dim].0, bounds[dim].1);
        for &theta in &thetas {
            for &qv in &qs {
                let mut base: Vec<f64> = bounds.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect();
                base[dim] = qv;
                let h = eps_q[dim];
                let mut q_plus = base.clone();
                q_plus[dim] += h;
                let mut q_minus = base.clone();
                q_minus[dim] -= h;

                // c_qq ≥ 0 (convexity in q).
                let cqq = (cost.value(&q_plus, theta) - 2.0 * cost.value(&base, theta)
                    + cost.value(&q_minus, theta))
                    / (h * h);
                if cqq < -tol.max(1e-5) {
                    return false;
                }

                // c_qθ > 0 (marginal cost increases with θ).
                let cq_hi = (cost.value(&q_plus, theta + eps_t)
                    - cost.value(&q_minus, theta + eps_t))
                    / (2.0 * h);
                let cq_lo = (cost.value(&q_plus, theta - eps_t)
                    - cost.value(&q_minus, theta - eps_t))
                    / (2.0 * h);
                let cqt = (cq_hi - cq_lo) / (2.0 * eps_t);
                if qv > bounds[dim].0 + h && cqt <= 0.0 {
                    return false;
                }

                // c_qqθ ≥ 0.
                let cqq_hi = (cost.value(&q_plus, theta + eps_t)
                    - 2.0 * cost.value(&base, theta + eps_t)
                    + cost.value(&q_minus, theta + eps_t))
                    / (h * h);
                let cqq_lo = (cost.value(&q_plus, theta - eps_t)
                    - 2.0 * cost.value(&base, theta - eps_t)
                    + cost.value(&q_minus, theta - eps_t))
                    / (h * h);
                if (cqq_hi - cqq_lo) / (2.0 * eps_t) < -1e-4 {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_cost_value_and_derivative() {
        let c = LinearCost::new(vec![0.6, 0.4]).unwrap();
        assert_eq!(c.dims(), 2);
        assert!((c.value(&[1.0, 2.0], 0.5) - 0.5 * 1.4).abs() < 1e-12);
        assert!((c.dtheta(&[1.0, 2.0], 0.5) - 1.4).abs() < 1e-12);
        assert_eq!(c.name(), "linear");
        assert_eq!(c.coefficients(), &[0.6, 0.4]);
    }

    #[test]
    fn quadratic_cost_value_and_derivative() {
        let c = QuadraticCost::new(vec![2.0]).unwrap();
        assert!((c.value(&[3.0], 0.5) - 9.0).abs() < 1e-12);
        assert!((c.dtheta(&[3.0], 0.5) - 18.0).abs() < 1e-12);
        assert_eq!(c.name(), "quadratic");
        assert_eq!(c.coefficients(), &[2.0]);
    }

    #[test]
    fn invalid_coefficients_rejected() {
        assert!(LinearCost::new(vec![]).is_err());
        assert!(LinearCost::new(vec![0.0]).is_err());
        assert!(LinearCost::new(vec![-1.0]).is_err());
        assert!(QuadraticCost::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn evaluate_checks_dimensions() {
        let c = LinearCost::new(vec![1.0, 1.0]).unwrap();
        assert!(c.evaluate(&[1.0, 1.0], 0.5).is_ok());
        assert!(matches!(
            c.evaluate(&[1.0], 0.5),
            Err(AuctionError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn costs_increase_with_theta_and_quality() {
        let lin = LinearCost::new(vec![1.0, 2.0]).unwrap();
        let quad = QuadraticCost::new(vec![1.0, 2.0]).unwrap();
        let q = [2.0, 3.0];
        for c in [&lin as &dyn CostFunction, &quad as &dyn CostFunction] {
            assert!(c.value(&q, 0.6) > c.value(&q, 0.3));
            assert!(c.value(&[3.0, 3.0], 0.5) > c.value(&[2.0, 3.0], 0.5));
        }
    }

    #[test]
    fn both_cost_families_satisfy_single_crossing() {
        let lin = LinearCost::new(vec![0.5, 0.5]).unwrap();
        let quad = QuadraticCost::new(vec![0.5, 0.5]).unwrap();
        let bounds = [(0.1, 1.0), (0.1, 1.0)];
        assert!(satisfies_single_crossing(&lin, &bounds, (0.1, 1.0), 5));
        assert!(satisfies_single_crossing(&quad, &bounds, (0.1, 1.0), 5));
    }

    #[test]
    fn single_crossing_detects_violations() {
        /// A pathological cost that decreases with θ: violates c_qθ > 0.
        #[derive(Debug)]
        struct DecreasingInTheta;
        impl CostFunction for DecreasingInTheta {
            fn dims(&self) -> usize {
                1
            }
            fn value(&self, q: &[f64], theta: f64) -> f64 {
                (1.0 - theta) * q[0]
            }
            fn dtheta(&self, q: &[f64], _theta: f64) -> f64 {
                -q[0]
            }
        }
        assert!(!satisfies_single_crossing(
            &DecreasingInTheta,
            &[(0.1, 1.0)],
            (0.1, 0.9),
            5
        ));
    }

    #[test]
    fn single_crossing_rejects_bad_configuration() {
        let lin = LinearCost::new(vec![1.0]).unwrap();
        // Wrong number of bounds.
        assert!(!satisfies_single_crossing(
            &lin,
            &[(0.0, 1.0), (0.0, 1.0)],
            (0.1, 1.0),
            5
        ));
        // Degenerate grid.
        assert!(!satisfies_single_crossing(
            &lin,
            &[(0.0, 1.0)],
            (0.1, 1.0),
            1
        ));
    }

    #[test]
    fn arc_and_ref_forwarding() {
        let arc: std::sync::Arc<dyn CostFunction> =
            std::sync::Arc::new(LinearCost::new(vec![2.0]).unwrap());
        assert_eq!(arc.dims(), 1);
        assert_eq!(arc.value(&[3.0], 1.0), 6.0);
        assert_eq!(arc.dtheta(&[3.0], 1.0), 6.0);
        let inner = LinearCost::new(vec![2.0]).unwrap();
        let r: &dyn CostFunction = &inner;
        assert_eq!((&r).value(&[3.0], 0.5), 3.0);
    }
}
