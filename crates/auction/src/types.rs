//! Core value types shared across the auction mechanism.

use std::fmt;

/// Identifier of an edge node (a bidder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// A multi-dimensional resource-quality vector `q = (q1, …, qm)`.
///
/// The paper's simulator uses two dimensions (data size, data-category proportion); the
/// real-world deployment uses three (computing power, bandwidth, data size). The type keeps
/// dimensions explicit so that scoring and cost functions can validate them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Quality(Vec<f64>);

impl Quality {
    /// Wraps a quality vector.
    pub fn new(values: Vec<f64>) -> Self {
        Quality(values)
    }

    /// Number of resource dimensions `m`.
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Borrow the raw values.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Value of the `i`-th resource, if present.
    pub fn get(&self, i: usize) -> Option<f64> {
        self.0.get(i).copied()
    }

    /// Consumes the wrapper and returns the raw vector.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Returns `true` if every component is finite and non-negative.
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Returns a copy where every component is scaled by `factor` (used to model quality
    /// misreporting in incentive-compatibility checks).
    pub fn scaled(&self, factor: f64) -> Quality {
        Quality(self.0.iter().map(|v| v * factor).collect())
    }

    /// Component-wise comparison: `true` when every component of `self` is `<=` the matching
    /// component of `other` and the dimensions agree.
    pub fn dominated_by(&self, other: &Quality) -> bool {
        self.dims() == other.dims() && self.0.iter().zip(other.0.iter()).all(|(a, b)| a <= b)
    }
}

impl From<Vec<f64>> for Quality {
    fn from(v: Vec<f64>) -> Self {
        Quality(v)
    }
}

impl AsRef<[f64]> for Quality {
    fn as_ref(&self) -> &[f64] {
        &self.0
    }
}

impl FromIterator<f64> for Quality {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Quality(iter.into_iter().collect())
    }
}

impl fmt::Display for Quality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, ")")
    }
}

/// A bid after the aggregator has applied the scoring rule `S(q, p) = s(q) − p`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredBid {
    /// The bidder.
    pub node: NodeId,
    /// Declared resource qualities.
    pub quality: Quality,
    /// Asked payment `p`.
    pub ask: f64,
    /// Resulting score `S(q, p)`.
    pub score: f64,
}

impl ScoredBid {
    /// Orders two scored bids by descending score (the aggregator's sort order).
    pub fn by_descending_score(a: &ScoredBid, b: &ScoredBid) -> std::cmp::Ordering {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_conversion() {
        let id: NodeId = 7u64.into();
        assert_eq!(id, NodeId(7));
        assert_eq!(id.to_string(), "node-7");
    }

    #[test]
    fn quality_accessors() {
        let q = Quality::new(vec![4000.0, 85.0]);
        assert_eq!(q.dims(), 2);
        assert_eq!(q.get(0), Some(4000.0));
        assert_eq!(q.get(5), None);
        assert_eq!(q.as_slice(), &[4000.0, 85.0]);
        assert_eq!(q.clone().into_inner(), vec![4000.0, 85.0]);
        assert!(q.is_valid());
        assert_eq!(q.to_string(), "(4000.0000, 85.0000)");
    }

    #[test]
    fn quality_validity_checks() {
        assert!(!Quality::new(vec![1.0, -2.0]).is_valid());
        assert!(!Quality::new(vec![f64::NAN]).is_valid());
        assert!(Quality::new(vec![]).is_valid());
    }

    #[test]
    fn quality_scaling_and_domination() {
        let q = Quality::new(vec![10.0, 20.0]);
        let down = q.scaled(0.5);
        assert_eq!(down.as_slice(), &[5.0, 10.0]);
        assert!(down.dominated_by(&q));
        assert!(!q.dominated_by(&down));
        // Mismatched dimensions never dominate.
        assert!(!Quality::new(vec![1.0]).dominated_by(&q));
    }

    #[test]
    fn quality_from_iterator() {
        let q: Quality = (0..3).map(|i| i as f64).collect();
        assert_eq!(q.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn scored_bids_sort_descending() {
        let mut bids = [
            ScoredBid {
                node: NodeId(1),
                quality: Quality::default(),
                ask: 0.1,
                score: 0.2,
            },
            ScoredBid {
                node: NodeId(2),
                quality: Quality::default(),
                ask: 0.1,
                score: 0.9,
            },
            ScoredBid {
                node: NodeId(3),
                quality: Quality::default(),
                ask: 0.1,
                score: 0.5,
            },
        ];
        bids.sort_by(ScoredBid::by_descending_score);
        let order: Vec<u64> = bids.iter().map(|b| b.node.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }
}
