//! Error type for the auction mechanism.

use std::fmt;

/// Error returned by the auction mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum AuctionError {
    /// A quality vector had the wrong number of dimensions.
    DimensionMismatch {
        /// Dimensions expected by the scoring/cost function.
        expected: usize,
        /// Dimensions actually supplied.
        actual: usize,
    },
    /// A scoring/cost parameter was invalid (negative weight, empty coefficient list, …).
    InvalidParameter(String),
    /// The private cost parameter θ lies outside the distribution support `[θ̲, θ̄]`.
    ThetaOutOfSupport {
        /// Offending θ.
        theta: f64,
        /// Lower support bound.
        lo: f64,
        /// Upper support bound.
        hi: f64,
    },
    /// The auction was configured with an invalid population / winner count.
    InvalidGame {
        /// Total number of nodes `N`.
        n: usize,
        /// Number of winners `K`.
        k: usize,
    },
    /// No bids were submitted to an auction round.
    NoBids,
    /// A numerical routine failed while computing the equilibrium.
    Numerics(fmore_numerics::NumericsError),
}

impl fmt::Display for AuctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuctionError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "quality vector has {actual} dimensions, expected {expected}"
                )
            }
            AuctionError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            AuctionError::ThetaOutOfSupport { theta, lo, hi } => {
                write!(f, "theta {theta} outside of support [{lo}, {hi}]")
            }
            AuctionError::InvalidGame { n, k } => {
                write!(
                    f,
                    "invalid auction game with N = {n} nodes and K = {k} winners"
                )
            }
            AuctionError::NoBids => write!(f, "no bids were submitted"),
            AuctionError::Numerics(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl std::error::Error for AuctionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuctionError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fmore_numerics::NumericsError> for AuctionError {
    fn from(e: fmore_numerics::NumericsError) -> Self {
        AuctionError::Numerics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_failure() {
        let e = AuctionError::DimensionMismatch {
            expected: 2,
            actual: 3,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
        let e = AuctionError::InvalidGame { n: 5, k: 9 };
        assert!(e.to_string().contains("K = 9"));
        let e = AuctionError::NoBids;
        assert!(e.to_string().contains("no bids"));
    }

    #[test]
    fn numerics_errors_convert_and_chain() {
        let inner = fmore_numerics::NumericsError::EmptyInput("grid");
        let e: AuctionError = inner.clone().into();
        assert_eq!(e, AuctionError::Numerics(inner));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AuctionError>();
    }
}
