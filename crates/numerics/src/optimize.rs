//! Derivative-free maximisation.
//!
//! Che's Theorem 1 chooses the bid quality as `q*(θ) = argmax_q s(q) − c(q, θ)`. For the
//! scoring and cost families used in the paper this objective is strictly concave, so a
//! golden-section search on each coordinate converges to the global maximiser. The
//! coordinate-ascent wrapper handles the multi-dimensional resource case of Proposition 3.

/// Maximises a unimodal scalar function over `[lo, hi]` by golden-section search.
///
/// Returns the pair `(argmax, max)`. When the objective is not unimodal the result is a
/// local maximiser. The search stops when the bracketing interval is shorter than `tol`
/// (a minimum of `1e-12` is enforced).
///
/// # Example
///
/// ```
/// use fmore_numerics::optimize::maximize_scalar;
/// let (x, v) = maximize_scalar(|x| -(x - 3.0) * (x - 3.0), 0.0, 10.0, 1e-10);
/// assert!((x - 3.0).abs() < 1e-4);
/// assert!(v.abs() < 1e-8);
/// ```
pub fn maximize_scalar<F>(mut f: F, lo: f64, hi: f64, tol: f64) -> (f64, f64)
where
    F: FnMut(f64) -> f64,
{
    let tol = tol.max(1e-12);
    let (mut a, mut b) = if lo <= hi { (lo, hi) } else { (hi, lo) };
    if (b - a) < tol {
        let x = 0.5 * (a + b);
        return (x, f(x));
    }
    let inv_phi = (5_f64.sqrt() - 1.0) / 2.0; // 1/φ
    let mut c = b - inv_phi * (b - a);
    let mut d = a + inv_phi * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a) > tol {
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - inv_phi * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + inv_phi * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

/// Maximises `f` over an axis-aligned box by cyclic coordinate ascent, using
/// [`maximize_scalar`] for each coordinate.
///
/// * `bounds` — per-coordinate `(lo, hi)` intervals; the dimension of the problem is
///   `bounds.len()`.
/// * `sweeps` — number of full passes over all coordinates.
///
/// Returns the pair `(argmax, max)`. For objectives that are concave and separable or have
/// strictly concave restrictions along coordinates (all scoring − cost combinations shipped
/// with this repository), coordinate ascent converges to the global maximiser.
///
/// # Panics
///
/// Panics if `bounds` is empty.
pub fn maximize_coordinate<F>(mut f: F, bounds: &[(f64, f64)], sweeps: usize) -> (Vec<f64>, f64)
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(
        !bounds.is_empty(),
        "maximize_coordinate requires at least one dimension"
    );
    // Start at the box midpoint.
    let mut x: Vec<f64> = bounds.iter().map(|&(lo, hi)| 0.5 * (lo + hi)).collect();
    let mut best = f(&x);
    for _ in 0..sweeps.max(1) {
        for dim in 0..bounds.len() {
            let (lo, hi) = bounds[dim];
            let mut probe = x.clone();
            let (xi, vi) = maximize_scalar(
                |v| {
                    probe[dim] = v;
                    f(&probe)
                },
                lo,
                hi,
                1e-9 * (hi - lo).abs().max(1.0),
            );
            if vi > best {
                best = vi;
                x[dim] = xi;
            }
        }
    }
    (x, best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_maximum_of_concave_quadratic() {
        let (x, v) = maximize_scalar(|x| 4.0 - (x - 1.5).powi(2), -10.0, 10.0, 1e-12);
        assert!((x - 1.5).abs() < 1e-5);
        assert!((v - 4.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_maximum_on_boundary() {
        // Increasing function: maximum should be found at the upper bound.
        let (x, _) = maximize_scalar(|x| x, 0.0, 5.0, 1e-10);
        assert!((x - 5.0).abs() < 1e-4);
    }

    #[test]
    fn scalar_handles_reversed_bounds() {
        let (x, _) = maximize_scalar(|x| -(x - 2.0).powi(2), 10.0, 0.0, 1e-10);
        assert!((x - 2.0).abs() < 1e-4);
    }

    #[test]
    fn scalar_handles_tiny_interval() {
        let (x, v) = maximize_scalar(|x| x, 1.0, 1.0, 1e-10);
        assert_eq!(x, 1.0);
        assert_eq!(v, 1.0);
    }

    #[test]
    fn coordinate_ascent_on_separable_objective() {
        let (x, v) = maximize_coordinate(
            |x| -(x[0] - 1.0).powi(2) - (x[1] + 2.0).powi(2) + 7.0,
            &[(-5.0, 5.0), (-5.0, 5.0)],
            4,
        );
        assert!((x[0] - 1.0).abs() < 1e-4);
        assert!((x[1] + 2.0).abs() < 1e-4);
        assert!((v - 7.0).abs() < 1e-7);
    }

    #[test]
    fn coordinate_ascent_on_coupled_concave_objective() {
        // Cobb-Douglas s(q) = q1^0.5 q2^0.5 minus linear cost: concave, interior maximum.
        let theta = 0.2;
        let (x, _) = maximize_coordinate(
            |q| (q[0].max(0.0) * q[1].max(0.0)).sqrt() - theta * (q[0] + q[1]),
            &[(0.0, 50.0), (0.0, 50.0)],
            8,
        );
        // Symmetric problem: q1 = q2 = 1/(4θ^2) * ... solve: d/dq1 0.5 sqrt(q2/q1) = θ at q1=q2 -> 0.5 = θ·...
        // With q1=q2=q: objective = q - 2θq maximised at boundary unless θ>0.5; here θ=0.2 so the
        // objective increases linearly (slope 1-2θ=0.6) and the maximiser sits at the box corner.
        assert!((x[0] - 50.0).abs() < 1e-3);
        assert!((x[1] - 50.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn coordinate_ascent_rejects_empty_bounds() {
        let _ = maximize_coordinate(|_| 0.0, &[], 1);
    }
}
