//! Min–max normalisation.
//!
//! The walk-through example of Section III-B normalises data size, bandwidth, and payment by
//! min–max normalisation before computing scores. The aggregator applies the same rescaling
//! in the simulator so that heterogeneous resource units are comparable.

/// A min–max normaliser mapping `[min, max]` linearly onto `[0, 1]`.
///
/// Degenerate ranges (`max == min`) map every value to `0.5`, matching the convention that a
/// resource all bidders provide identically carries no ranking information.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMaxNormalizer {
    min: f64,
    max: f64,
}

impl MinMaxNormalizer {
    /// Creates a normaliser for the range `[min, max]`.
    pub fn new(min: f64, max: f64) -> Self {
        Self { min, max }
    }

    /// Fits a normaliser to observed values. Returns `None` if `values` is empty or contains
    /// a non-finite number.
    pub fn fit(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Self { min, max })
    }

    /// Lower end of the fitted range.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper end of the fitted range.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Maps `x` into `[0, 1]`, clamping values outside of the fitted range.
    pub fn normalize(&self, x: f64) -> f64 {
        if self.max <= self.min {
            return 0.5;
        }
        ((x - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
    }

    /// Maps a normalised value in `[0, 1]` back to the original range.
    pub fn denormalize(&self, y: f64) -> f64 {
        if self.max <= self.min {
            return self.min;
        }
        self.min + y.clamp(0.0, 1.0) * (self.max - self.min)
    }
}

/// Normalises a whole slice with a normaliser fitted to that slice.
///
/// Returns an empty vector for empty input.
pub fn min_max_normalize(values: &[f64]) -> Vec<f64> {
    match MinMaxNormalizer::fit(values) {
        Some(n) => values.iter().map(|&v| n.normalize(v)).collect(),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_into_unit_interval() {
        let n = MinMaxNormalizer::new(1000.0, 5000.0);
        assert_eq!(n.normalize(1000.0), 0.0);
        assert_eq!(n.normalize(5000.0), 1.0);
        assert!((n.normalize(3000.0) - 0.5).abs() < 1e-12);
        // Clamping.
        assert_eq!(n.normalize(0.0), 0.0);
        assert_eq!(n.normalize(9000.0), 1.0);
    }

    #[test]
    fn round_trips_through_denormalize() {
        let n = MinMaxNormalizer::new(5.0, 100.0);
        for x in [5.0, 23.0, 62.5, 100.0] {
            let y = n.normalize(x);
            assert!((n.denormalize(y) - x).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_range_maps_to_half() {
        let n = MinMaxNormalizer::new(3.0, 3.0);
        assert_eq!(n.normalize(3.0), 0.5);
        assert_eq!(n.normalize(7.0), 0.5);
        assert_eq!(n.denormalize(0.9), 3.0);
    }

    #[test]
    fn fit_matches_walkthrough_ranges() {
        // The data sizes from the round-1 bids in Fig. 3.
        let sizes = [4000.0, 3000.0, 3500.0, 5000.0, 5000.0];
        let n = MinMaxNormalizer::fit(&sizes).unwrap();
        assert_eq!(n.min(), 3000.0);
        assert_eq!(n.max(), 5000.0);
        assert!((n.normalize(4000.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(MinMaxNormalizer::fit(&[]).is_none());
        assert!(MinMaxNormalizer::fit(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn slice_helper_normalizes_everything() {
        let out = min_max_normalize(&[2.0, 4.0, 6.0]);
        assert_eq!(out, vec![0.0, 0.5, 1.0]);
        assert!(min_max_normalize(&[]).is_empty());
    }
}
