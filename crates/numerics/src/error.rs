//! Error type shared by the numerical routines.

use std::fmt;

/// Error returned by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// An interval `[lo, hi]` was supplied with `lo > hi` or a non-finite endpoint.
    InvalidInterval {
        /// Lower endpoint supplied by the caller.
        lo: f64,
        /// Upper endpoint supplied by the caller.
        hi: f64,
    },
    /// A routine requiring a strictly positive number of steps/samples received zero.
    EmptyInput(&'static str),
    /// A probability outside of `[0, 1]` was supplied.
    InvalidProbability(f64),
    /// A distribution parameter was invalid (e.g. non-positive standard deviation).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value that was rejected.
        value: f64,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::InvalidInterval { lo, hi } => {
                write!(f, "invalid interval [{lo}, {hi}]")
            }
            NumericsError::EmptyInput(what) => write!(f, "empty input for {what}"),
            NumericsError::InvalidProbability(p) => {
                write!(f, "probability {p} outside of [0, 1]")
            }
            NumericsError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
        }
    }
}

impl std::error::Error for NumericsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NumericsError::InvalidInterval { lo: 2.0, hi: 1.0 };
        assert!(e.to_string().contains("[2, 1]"));
        let e = NumericsError::EmptyInput("samples");
        assert!(e.to_string().contains("samples"));
        let e = NumericsError::InvalidProbability(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = NumericsError::InvalidParameter {
            name: "sigma",
            value: -1.0,
        };
        assert!(e.to_string().contains("sigma"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericsError>();
    }
}
