//! First-order ODE solvers.
//!
//! The payment component of the Nash-equilibrium bid in FMore (Theorem 1) is characterised
//! by the first-order linear differential equation
//!
//! ```text
//! b'(u) + φ(u) b(u) = u φ(u),        φ(u) = g'(u) / g(u),
//! ```
//!
//! with the initial condition `b(0) = 0`. The paper proposes solving it with the Euler
//! method (Eq. 13–14) in linear time; we also provide a classical Runge–Kutta 4 solver so
//! the ablation benchmarks can compare the two.

use crate::error::NumericsError;

/// The numerical solution of an initial-value problem on a uniform grid.
#[derive(Debug, Clone, PartialEq)]
pub struct OdeSolution {
    /// Grid points `x_0 < x_1 < … < x_n`.
    pub xs: Vec<f64>,
    /// Solution values `y_i ≈ y(x_i)`.
    pub ys: Vec<f64>,
}

impl OdeSolution {
    /// Returns the final value `y(x_n)` of the solution.
    ///
    /// # Panics
    ///
    /// Panics if the solution is empty, which cannot happen for solutions produced by
    /// [`solve_euler`] or [`solve_rk4`].
    pub fn final_value(&self) -> f64 {
        *self.ys.last().expect("ODE solution is never empty")
    }

    /// Linearly interpolates the solution at `x`, clamping to the grid endpoints.
    pub fn interpolate(&self, x: f64) -> f64 {
        if self.xs.is_empty() {
            return 0.0;
        }
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= *self.xs.last().unwrap() {
            return *self.ys.last().unwrap();
        }
        // Binary search for the segment containing x.
        let idx = match self.xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(i) => return self.ys[i],
            Err(i) => i,
        };
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        let t = (x - x0) / (x1 - x0);
        y0 + t * (y1 - y0)
    }
}

fn validate_grid(x0: f64, x1: f64, steps: usize) -> Result<(), NumericsError> {
    if !x0.is_finite() || !x1.is_finite() || x1 < x0 {
        return Err(NumericsError::InvalidInterval { lo: x0, hi: x1 });
    }
    if steps == 0 {
        return Err(NumericsError::EmptyInput("ODE steps"));
    }
    Ok(())
}

/// Solves `dy/dx = f(x, y)` with `y(x0) = y0` on `[x0, x1]` using the forward Euler method
/// (the method proposed by the FMore paper, Eq. 13–14) with `steps` uniform steps.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInterval`] if the interval is invalid and
/// [`NumericsError::EmptyInput`] if `steps == 0`.
///
/// # Example
///
/// ```
/// use fmore_numerics::ode::solve_euler;
/// // dy/dx = y, y(0) = 1  =>  y(1) = e
/// let sol = solve_euler(|_, y| y, 0.0, 1.0, 1.0, 10_000).unwrap();
/// assert!((sol.final_value() - std::f64::consts::E).abs() < 1e-3);
/// ```
pub fn solve_euler<F>(
    mut f: F,
    x0: f64,
    y0: f64,
    x1: f64,
    steps: usize,
) -> Result<OdeSolution, NumericsError>
where
    F: FnMut(f64, f64) -> f64,
{
    validate_grid(x0, x1, steps)?;
    let h = (x1 - x0) / steps as f64;
    let mut xs = Vec::with_capacity(steps + 1);
    let mut ys = Vec::with_capacity(steps + 1);
    let (mut x, mut y) = (x0, y0);
    xs.push(x);
    ys.push(y);
    for _ in 0..steps {
        y += h * f(x, y);
        x += h;
        xs.push(x);
        ys.push(y);
    }
    Ok(OdeSolution { xs, ys })
}

/// Solves `dy/dx = f(x, y)` with `y(x0) = y0` on `[x0, x1]` using the classical fourth-order
/// Runge–Kutta method with `steps` uniform steps.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInterval`] if the interval is invalid and
/// [`NumericsError::EmptyInput`] if `steps == 0`.
pub fn solve_rk4<F>(
    mut f: F,
    x0: f64,
    y0: f64,
    x1: f64,
    steps: usize,
) -> Result<OdeSolution, NumericsError>
where
    F: FnMut(f64, f64) -> f64,
{
    validate_grid(x0, x1, steps)?;
    let h = (x1 - x0) / steps as f64;
    let mut xs = Vec::with_capacity(steps + 1);
    let mut ys = Vec::with_capacity(steps + 1);
    let (mut x, mut y) = (x0, y0);
    xs.push(x);
    ys.push(y);
    for _ in 0..steps {
        let k1 = f(x, y);
        let k2 = f(x + h / 2.0, y + h / 2.0 * k1);
        let k3 = f(x + h / 2.0, y + h / 2.0 * k2);
        let k4 = f(x + h, y + h * k3);
        y += h / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
        x += h;
        xs.push(x);
        ys.push(y);
    }
    Ok(OdeSolution { xs, ys })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euler_matches_exponential() {
        let sol = solve_euler(|_, y| y, 0.0, 1.0, 1.0, 50_000).unwrap();
        assert!((sol.final_value() - std::f64::consts::E).abs() < 1e-4);
    }

    #[test]
    fn rk4_is_more_accurate_than_euler() {
        let exact = std::f64::consts::E;
        let euler = solve_euler(|_, y| y, 0.0, 1.0, 1.0, 100)
            .unwrap()
            .final_value();
        let rk4 = solve_rk4(|_, y| y, 0.0, 1.0, 1.0, 100)
            .unwrap()
            .final_value();
        assert!((rk4 - exact).abs() < (euler - exact).abs());
        assert!((rk4 - exact).abs() < 1e-8);
    }

    #[test]
    fn euler_handles_degenerate_interval() {
        let sol = solve_euler(|_, y| y, 2.0, 5.0, 2.0, 10).unwrap();
        assert_eq!(sol.final_value(), 5.0);
        assert_eq!(sol.xs.len(), 11);
    }

    #[test]
    fn zero_steps_is_rejected() {
        assert_eq!(
            solve_euler(|_, y| y, 0.0, 1.0, 1.0, 0).unwrap_err(),
            NumericsError::EmptyInput("ODE steps")
        );
    }

    #[test]
    fn reversed_interval_is_rejected() {
        assert!(matches!(
            solve_rk4(|_, y| y, 1.0, 1.0, 0.0, 10).unwrap_err(),
            NumericsError::InvalidInterval { .. }
        ));
    }

    #[test]
    fn linear_ode_solved_exactly_by_euler_when_rhs_constant() {
        // dy/dx = 3 -> y = 3x; Euler is exact for constant RHS.
        let sol = solve_euler(|_, _| 3.0, 0.0, 0.0, 2.0, 8).unwrap();
        assert!((sol.final_value() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_monotone_on_monotone_solution() {
        let sol = solve_rk4(|_, y| y, 0.0, 1.0, 1.0, 100).unwrap();
        let a = sol.interpolate(0.25);
        let b = sol.interpolate(0.5);
        let c = sol.interpolate(0.75);
        assert!(a < b && b < c);
        // Clamping at the ends.
        assert_eq!(sol.interpolate(-1.0), sol.ys[0]);
        assert_eq!(sol.interpolate(10.0), sol.final_value());
    }

    #[test]
    fn rk4_solves_payment_style_linear_ode() {
        // b'(u) = φ(u) (u - b(u)) with φ(u) = 2/u (i.e. g(u) = u^2, N=3, K=1 style).
        // Analytic solution with b(0)=0 is b(u) = 2u/3.
        let sol = solve_rk4(
            |u, b| {
                if u <= 1e-12 {
                    0.0
                } else {
                    (2.0 / u) * (u - b)
                }
            },
            0.0,
            0.0,
            3.0,
            30_000,
        )
        .unwrap();
        assert!((sol.final_value() - 2.0).abs() < 1e-3);
    }
}
