//! Numerical substrate for the FMore reproduction.
//!
//! The FMore incentive mechanism (Zeng et al., ICDCS 2020) requires a small set of
//! numerical tools to compute Nash-equilibrium bids and to drive the simulation:
//!
//! * first-order ODE solvers (Euler, RK4) used to integrate the payment equation of
//!   Theorem 1 ([`ode`]),
//! * numerical quadrature used for the closed-form payment integral ([`quadrature`]),
//! * one-dimensional and coordinate-wise maximisation used for the quality choice
//!   `q* = argmax s(q) − c(q, θ)` of Che's Theorem 1 ([`optimize`]),
//! * probability distributions over the private cost parameter θ and empirical CDFs
//!   estimated from historical data ([`distribution`]),
//! * min–max normalisation as used by the walk-through example of Section III-B
//!   ([`normalize`]),
//! * summary statistics and histograms used by the evaluation ([`stats`]),
//! * deterministic, seedable random-number helpers so that every experiment in the
//!   repository is reproducible ([`rng`]),
//! * the workspace-wide runtime SIMD dispatch gate shared by every vectorised kernel
//!   ([`simd`]).
//!
//! # Example
//!
//! ```
//! use fmore_numerics::optimize::maximize_scalar;
//!
//! // argmax of s(q) - c(q, θ) for s(q) = 2√q and c(q, θ) = θ q with θ = 0.5.
//! let (q_star, value) = maximize_scalar(|q| 2.0 * q.sqrt() - 0.5 * q, 0.0, 100.0, 1e-9);
//! assert!((q_star - 4.0).abs() < 1e-3);
//! assert!((value - 2.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distribution;
pub mod error;
pub mod normalize;
pub mod ode;
pub mod optimize;
pub mod quadrature;
pub mod rng;
pub mod simd;
pub mod stats;

pub use distribution::{Distribution1D, EmpiricalCdf, TruncatedNormal, UniformDist};
pub use error::NumericsError;
pub use ode::{solve_euler, solve_rk4, OdeSolution};
pub use optimize::{maximize_coordinate, maximize_scalar};
pub use quadrature::{cumulative_trapezoid, simpson, trapezoid};
pub use rng::{derive_stream, seeded_rng};
pub use simd::{avx512_enabled, avx_enabled};
