//! The workspace-wide runtime SIMD dispatch gate.
//!
//! Every vectorised kernel in the workspace — the `fmore_ml` matmul family, the
//! `fmore_auction` batch-scoring kernels — follows the same discipline: an
//! `#[inline(always)]` scalar core, an `#[target_feature(enable = "avx")]` wrapper that
//! compiles the *same* core with AVX code generation, and a runtime switch between them.
//! Because the wrapper only widens the auto-vectorised lanes across **independent** outputs
//! (no per-element reassociation), the AVX and scalar paths produce identical bits and
//! results stay reproducible across machines with and without AVX.
//!
//! This module is the single home of that runtime switch. [`avx_enabled`] answers "may a
//! kernel take its AVX path?" from two inputs, cached per process:
//!
//! * the CPU: `is_x86_feature_detected!("avx")` on x86-64, `false` elsewhere;
//! * the [`FORCE_SCALAR_ENV`] environment variable (`FMORE_FORCE_SCALAR=1`), which forces
//!   the scalar cores even on AVX hardware — how CI's scalar-only job runs the parity and
//!   golden suites through the exact code paths a non-AVX machine would take.

use std::sync::OnceLock;

/// Environment variable forcing every kernel onto its scalar core (`1` to force; `0` or
/// unset leaves the runtime CPU detection in charge).
pub const FORCE_SCALAR_ENV: &str = "FMORE_FORCE_SCALAR";

/// Whether kernels may take their AVX-compiled path: the CPU supports AVX and
/// [`FORCE_SCALAR_ENV`] has not forced the scalar cores. Evaluated once per process.
pub fn avx_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| v != *"0") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::is_x86_feature_detected!("avx")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Whether kernels may take their AVX-512-compiled path: the CPU supports the F/DQ/VL
/// subsets (64-bit lane multiplies and `u64 → f64` conversions, the ops the fused bid
/// derivation vectorises over) and [`FORCE_SCALAR_ENV`] has not forced the scalar cores.
/// Evaluated once per process. Implies nothing about [`avx_enabled`] — each kernel checks
/// the gate matching its widest instruction set and falls through tier by tier.
pub fn avx512_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        if std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| v != *"0") {
            return false;
        }
        #[cfg(target_arch = "x86_64")]
        {
            std::is_x86_feature_detected!("avx512f")
                && std::is_x86_feature_detected!("avx512dq")
                && std::is_x86_feature_detected!("avx512vl")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_is_stable_within_a_process() {
        // The OnceLock makes the answer a process constant; dispatching twice must agree
        // (kernels rely on this to stay on one path for a whole run).
        assert_eq!(avx_enabled(), avx_enabled());
        assert_eq!(avx512_enabled(), avx512_enabled());
    }

    #[test]
    fn avx512_gate_never_claims_unsupported_hardware() {
        #[cfg(not(target_arch = "x86_64"))]
        assert!(!avx512_enabled());
        #[cfg(target_arch = "x86_64")]
        if !std::is_x86_feature_detected!("avx512dq") {
            assert!(!avx512_enabled());
        }
    }

    #[test]
    fn gate_never_claims_avx_off_x86() {
        #[cfg(not(target_arch = "x86_64"))]
        assert!(!avx_enabled());
        #[cfg(target_arch = "x86_64")]
        if !std::is_x86_feature_detected!("avx") {
            assert!(!avx_enabled());
        }
    }
}
