//! Deterministic random-number helpers.
//!
//! Every experiment in the repository takes an explicit seed so that paper figures can be
//! regenerated bit-for-bit. All crates obtain their RNGs through [`seeded_rng`] to keep the
//! choice of generator in a single place.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// use fmore_numerics::rng::seeded_rng;
/// use rand::Rng;
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream index.
///
/// Used to give every edge node / client an independent but reproducible RNG stream.
#[inline]
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    // SplitMix64 step: decorrelates consecutive stream indices.
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An O(1)-derivable per-stream RNG: `derive_stream(seed, i)` is
/// `seeded_rng(derive_seed(seed, i))`, named for the access pattern it enables — a
/// population of millions of nodes where node `i`'s attributes are a pure function of
/// `(seed, i)`, materialised on demand instead of stored. The backbone of
/// `fmore_mec`'s lazily materialised node populations.
pub fn derive_stream(seed: u64, stream: u64) -> StdRng {
    seeded_rng(derive_seed(seed, stream))
}

/// Fisher–Yates shuffles a slice in place using the supplied RNG.
pub fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    if items.len() < 2 {
        return;
    }
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Samples `k` distinct indices uniformly at random from `0..n` (reservoir sampling).
/// Returns all indices when `k >= n`.
pub fn sample_indices<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    let mut out = Vec::new();
    sample_indices_into(n, k, rng, &mut out);
    out
}

/// Allocation-free form of [`sample_indices`]: writes the sampled indices into `out`
/// (cleared first, capacity reused), consuming the identical RNG stream.
pub fn sample_indices_into<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R, out: &mut Vec<usize>) {
    out.clear();
    if k >= n {
        out.extend(0..n);
        return;
    }
    out.extend(0..k);
    for i in k..n {
        let j = rng.gen_range(0..=i);
        if j < k {
            out[j] = i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(1);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derived_seeds_are_distinct_per_stream() {
        let parent = 99;
        let s: Vec<u64> = (0..100).map(|i| derive_seed(parent, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = seeded_rng(5);
        let mut v: Vec<u32> = (0..50).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = seeded_rng(5);
        let mut empty: Vec<u32> = vec![];
        shuffle(&mut empty, &mut rng);
        let mut one = vec![7u32];
        shuffle(&mut one, &mut rng);
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = seeded_rng(9);
        let s = sample_indices(100, 20, &mut rng);
        assert_eq!(s.len(), 20);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 20);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_saturates() {
        let mut rng = seeded_rng(9);
        let s = sample_indices(5, 10, &mut rng);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sample_indices_is_roughly_uniform() {
        let mut rng = seeded_rng(13);
        let mut counts = vec![0usize; 10];
        for _ in 0..5000 {
            for idx in sample_indices(10, 3, &mut rng) {
                counts[idx] += 1;
            }
        }
        // Each index expected ~1500 times; allow generous tolerance.
        for &c in &counts {
            assert!((1200..1800).contains(&c), "count {c} outside tolerance");
        }
    }
}
