//! Summary statistics and histograms used by the evaluation harness.

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance; `0.0` for inputs with fewer than two elements.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Linear-interpolation percentile, `p ∈ [0, 100]`. Returns `None` for empty input.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// A fixed-width histogram over `[lo, hi)` with values outside clamped into the end bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let idx = ((x - self.lo) / width).floor();
        let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
        self.counts[idx] += 1;
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin counts normalised to proportions (summing to 1 when non-empty).
    pub fn proportions(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Midpoint of each bin, useful as plot x-coordinates.
    pub fn bin_centers(&self) -> Vec<f64> {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        (0..bins)
            .map(|i| self.lo + (i as f64 + 0.5) * width)
            .collect()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn histogram_counts_and_proportions() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.5, 1.5, 2.5, 2.6, 9.9, 10.5, -1.0]);
        assert_eq!(h.counts(), &[3, 2, 0, 0, 2]);
        assert_eq!(h.total(), 7);
        let p = h.proportions();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(h.bin_centers(), vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn empty_histogram_proportions_are_zero() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.proportions(), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
