//! Probability distributions over the private cost parameter θ.
//!
//! The FMore model (Section III) assumes each edge node's private cost parameter θ is drawn
//! i.i.d. from a distribution with CDF `F` supported on `[θ̲, θ̄]` with `0 < θ̲ < θ̄ < ∞` and a
//! positive, continuously differentiable density `f`. Nodes learn `F` from historical data;
//! the [`EmpiricalCdf`] type models exactly that estimation step.

use crate::error::NumericsError;
use rand::Rng;

/// A one-dimensional distribution with bounded support, as assumed for θ in the paper.
pub trait Distribution1D {
    /// Lower end of the support (θ̲ in the paper).
    fn lower(&self) -> f64;
    /// Upper end of the support (θ̄ in the paper).
    fn upper(&self) -> f64;
    /// Cumulative distribution function `F(x) = Pr[θ ≤ x]`, clamped to `[0, 1]`.
    fn cdf(&self, x: f64) -> f64;
    /// Probability density function `f(x)`; zero outside the support.
    fn pdf(&self, x: f64) -> f64;
    /// Draws one sample using the supplied random-number generator.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The quantile function `F⁻¹(p)`, computed by bisection on the CDF.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidProbability`] if `p ∉ [0, 1]`.
    fn quantile(&self, p: f64) -> Result<f64, NumericsError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(NumericsError::InvalidProbability(p));
        }
        let (mut lo, mut hi) = (self.lower(), self.upper());
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Ok(0.5 * (lo + hi))
    }
}

/// The uniform distribution on `[lo, hi]` — the default model for θ in our experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDist {
    lo: f64,
    hi: f64,
}

impl UniformDist {
    /// Creates a uniform distribution on `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidInterval`] if `lo ≥ hi` or an endpoint is not finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, NumericsError> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(NumericsError::InvalidInterval { lo, hi });
        }
        Ok(Self { lo, hi })
    }
}

impl Distribution1D for UniformDist {
    fn lower(&self) -> f64 {
        self.lo
    }
    fn upper(&self) -> f64 {
        self.hi
    }
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0)
    }
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.lo && x <= self.hi {
            1.0 / (self.hi - self.lo)
        } else {
            0.0
        }
    }
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.lo..self.hi)
    }
}

/// A normal distribution truncated to `[lo, hi]`, used to model clustered cost parameters
/// (e.g. a fleet of mostly similar home gateways with a few outliers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruncatedNormal {
    mu: f64,
    sigma: f64,
    lo: f64,
    hi: f64,
    /// Normalisation constant `Φ((hi-μ)/σ) − Φ((lo-μ)/σ)`.
    z: f64,
}

impl TruncatedNormal {
    /// Creates a normal distribution with mean `mu` and standard deviation `sigma`,
    /// truncated to `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidParameter`] for non-positive `sigma` and
    /// [`NumericsError::InvalidInterval`] for an invalid interval.
    pub fn new(mu: f64, sigma: f64, lo: f64, hi: f64) -> Result<Self, NumericsError> {
        if sigma <= 0.0 || !sigma.is_finite() {
            return Err(NumericsError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(NumericsError::InvalidInterval { lo, hi });
        }
        let z = std_normal_cdf((hi - mu) / sigma) - std_normal_cdf((lo - mu) / sigma);
        if z <= 1e-300 {
            return Err(NumericsError::InvalidParameter {
                name: "truncation mass",
                value: z,
            });
        }
        Ok(Self {
            mu,
            sigma,
            lo,
            hi,
            z,
        })
    }
}

impl Distribution1D for TruncatedNormal {
    fn lower(&self) -> f64 {
        self.lo
    }
    fn upper(&self) -> f64 {
        self.hi
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        ((std_normal_cdf((x - self.mu) / self.sigma)
            - std_normal_cdf((self.lo - self.mu) / self.sigma))
            / self.z)
            .clamp(0.0, 1.0)
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < self.lo || x > self.hi {
            return 0.0;
        }
        let t = (x - self.mu) / self.sigma;
        std_normal_pdf(t) / (self.sigma * self.z)
    }
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Rejection sampling against the untruncated normal; the truncation intervals used in
        // the experiments retain most of the mass so this terminates quickly.
        loop {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let x = self.mu + self.sigma * n;
            if x >= self.lo && x <= self.hi {
                return x;
            }
        }
    }
}

/// An empirical CDF built from historical samples (how nodes "learn `F(θ)` from the
/// historical data" in Section III-A step 2).
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds an empirical CDF from observed samples. Non-finite samples are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::EmptyInput`] if no samples are supplied and
    /// [`NumericsError::InvalidParameter`] if any sample is not finite.
    pub fn from_samples(samples: &[f64]) -> Result<Self, NumericsError> {
        if samples.is_empty() {
            return Err(NumericsError::EmptyInput("empirical CDF samples"));
        }
        if let Some(bad) = samples.iter().find(|s| !s.is_finite()) {
            return Err(NumericsError::InvalidParameter {
                name: "sample",
                value: *bad,
            });
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ok(Self { sorted })
    }

    /// Number of samples backing this CDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the CDF holds no samples (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

impl Distribution1D for EmpiricalCdf {
    fn lower(&self) -> f64 {
        self.sorted[0]
    }
    fn upper(&self) -> f64 {
        *self.sorted.last().unwrap()
    }
    fn cdf(&self, x: f64) -> f64 {
        // Fraction of samples ≤ x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }
    fn pdf(&self, x: f64) -> f64 {
        // Kernel-free density estimate: finite difference of the CDF over a small window.
        let span = (self.upper() - self.lower()).max(1e-12);
        let h = span / (self.sorted.len() as f64).sqrt().max(2.0);
        (self.cdf(x + h) - self.cdf(x - h)) / (2.0 * h)
    }
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let idx = rng.gen_range(0..self.sorted.len());
        self.sorted[idx]
    }
}

fn std_normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Abramowitz–Stegun style approximation of the standard normal CDF via `erf`.
fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26, max absolute error 1.5e-7).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn uniform_basic_properties() {
        let d = UniformDist::new(0.1, 0.9).unwrap();
        assert_eq!(d.lower(), 0.1);
        assert_eq!(d.upper(), 0.9);
        assert!((d.cdf(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(1.0), 1.0);
        assert!((d.pdf(0.5) - 1.25).abs() < 1e-12);
        assert_eq!(d.pdf(1.5), 0.0);
    }

    #[test]
    fn uniform_rejects_bad_intervals() {
        assert!(UniformDist::new(1.0, 1.0).is_err());
        assert!(UniformDist::new(2.0, 1.0).is_err());
        assert!(UniformDist::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn uniform_samples_stay_in_support() {
        let d = UniformDist::new(0.1, 0.9).unwrap();
        let mut rng = seeded_rng(7);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((0.1..0.9).contains(&x));
        }
    }

    #[test]
    fn uniform_quantile_inverts_cdf() {
        let d = UniformDist::new(2.0, 6.0).unwrap();
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let q = d.quantile(p).unwrap();
            assert!((d.cdf(q) - p).abs() < 1e-6, "p={p} q={q}");
        }
        assert!(d.quantile(1.5).is_err());
        assert!(d.quantile(-0.1).is_err());
    }

    #[test]
    fn truncated_normal_cdf_monotone_and_bounded() {
        let d = TruncatedNormal::new(0.5, 0.2, 0.1, 0.9).unwrap();
        assert_eq!(d.cdf(0.05), 0.0);
        assert_eq!(d.cdf(0.95), 1.0);
        let mut prev = 0.0;
        for i in 0..=50 {
            let x = 0.1 + 0.8 * i as f64 / 50.0;
            let c = d.cdf(x);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(
            (d.cdf(0.5) - 0.5).abs() < 1e-6,
            "symmetric truncation keeps the median at μ"
        );
    }

    #[test]
    fn truncated_normal_rejects_bad_parameters() {
        assert!(TruncatedNormal::new(0.5, 0.0, 0.1, 0.9).is_err());
        assert!(TruncatedNormal::new(0.5, -1.0, 0.1, 0.9).is_err());
        assert!(TruncatedNormal::new(0.5, 0.2, 0.9, 0.1).is_err());
    }

    #[test]
    fn truncated_normal_samples_in_support() {
        let d = TruncatedNormal::new(0.5, 0.3, 0.2, 0.8).unwrap();
        let mut rng = seeded_rng(11);
        let mut sum = 0.0;
        const N: usize = 2000;
        for _ in 0..N {
            let x = d.sample(&mut rng);
            assert!((0.2..=0.8).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!(
            (mean - 0.5).abs() < 0.02,
            "mean {mean} should be near μ for symmetric truncation"
        );
    }

    #[test]
    fn empirical_cdf_matches_fractions() {
        let e = EmpiricalCdf::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(10.0), 1.0);
        assert_eq!(e.lower(), 1.0);
        assert_eq!(e.upper(), 4.0);
    }

    #[test]
    fn empirical_cdf_rejects_bad_input() {
        assert!(EmpiricalCdf::from_samples(&[]).is_err());
        assert!(EmpiricalCdf::from_samples(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn empirical_cdf_approximates_uniform_source() {
        let d = UniformDist::new(0.1, 0.9).unwrap();
        let mut rng = seeded_rng(3);
        let samples: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng)).collect();
        let e = EmpiricalCdf::from_samples(&samples).unwrap();
        for x in [0.2, 0.4, 0.6, 0.8] {
            assert!((e.cdf(x) - d.cdf(x)).abs() < 0.03, "x={x}");
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }
}
