//! Numerical quadrature.
//!
//! The equilibrium payment of Theorem 1 contains the integral `∫_0^u g(x)/g(u) dx`, and the
//! one-winner benchmark of Che's Theorem 2 contains `∫_θ^θ̄ c_θ(q_s(t), t) ((1-F(t))/(1-F(θ)))^{N-1} dt`.
//! Both are evaluated with the composite rules below.

use crate::error::NumericsError;

/// Integrates `f` over `[a, b]` with the composite trapezoid rule on `n` sub-intervals.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInterval`] when `b < a` or an endpoint is not finite, and
/// [`NumericsError::EmptyInput`] when `n == 0`.
///
/// # Example
///
/// ```
/// use fmore_numerics::quadrature::trapezoid;
/// let integral = trapezoid(|x| x * x, 0.0, 1.0, 10_000).unwrap();
/// assert!((integral - 1.0 / 3.0).abs() < 1e-6);
/// ```
pub fn trapezoid<F>(mut f: F, a: f64, b: f64, n: usize) -> Result<f64, NumericsError>
where
    F: FnMut(f64) -> f64,
{
    validate(a, b, n)?;
    if a == b {
        return Ok(0.0);
    }
    let h = (b - a) / n as f64;
    let mut sum = 0.5 * (f(a) + f(b));
    for i in 1..n {
        sum += f(a + i as f64 * h);
    }
    Ok(sum * h)
}

/// Integrates `f` over `[a, b]` with the composite Simpson rule on `n` sub-intervals
/// (`n` is rounded up to the next even number).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidInterval`] when `b < a` or an endpoint is not finite, and
/// [`NumericsError::EmptyInput`] when `n == 0`.
pub fn simpson<F>(mut f: F, a: f64, b: f64, n: usize) -> Result<f64, NumericsError>
where
    F: FnMut(f64) -> f64,
{
    validate(a, b, n)?;
    if a == b {
        return Ok(0.0);
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let coeff = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += coeff * f(a + i as f64 * h);
    }
    Ok(sum * h / 3.0)
}

/// Computes the cumulative integral `F(x_i) = ∫_{x_0}^{x_i} y dx` of sampled data with the
/// trapezoid rule. Returns one value per grid point; the first value is always `0`.
///
/// # Errors
///
/// Returns [`NumericsError::EmptyInput`] if `xs` is empty and
/// [`NumericsError::InvalidInterval`] if `xs` and `ys` have different lengths or `xs` is not
/// non-decreasing.
pub fn cumulative_trapezoid(xs: &[f64], ys: &[f64]) -> Result<Vec<f64>, NumericsError> {
    if xs.is_empty() {
        return Err(NumericsError::EmptyInput("cumulative_trapezoid grid"));
    }
    if xs.len() != ys.len() {
        return Err(NumericsError::InvalidInterval {
            lo: xs.len() as f64,
            hi: ys.len() as f64,
        });
    }
    let mut out = Vec::with_capacity(xs.len());
    out.push(0.0);
    for i in 1..xs.len() {
        let dx = xs[i] - xs[i - 1];
        if dx < 0.0 {
            return Err(NumericsError::InvalidInterval {
                lo: xs[i - 1],
                hi: xs[i],
            });
        }
        let area = 0.5 * (ys[i] + ys[i - 1]) * dx;
        out.push(out[i - 1] + area);
    }
    Ok(out)
}

fn validate(a: f64, b: f64, n: usize) -> Result<(), NumericsError> {
    if !a.is_finite() || !b.is_finite() || b < a {
        return Err(NumericsError::InvalidInterval { lo: a, hi: b });
    }
    if n == 0 {
        return Err(NumericsError::EmptyInput("quadrature intervals"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trapezoid_quadratic() {
        let v = trapezoid(|x| x * x, 0.0, 2.0, 20_000).unwrap();
        assert!((v - 8.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn simpson_is_exact_for_cubics() {
        let v = simpson(|x| x.powi(3) - 2.0 * x + 1.0, -1.0, 3.0, 2).unwrap();
        // ∫ = [x^4/4 - x^2 + x] from -1 to 3 = (81/4 - 9 + 3) - (1/4 - 1 - 1) = 16
        assert!((v - 16.0).abs() < 1e-10);
    }

    #[test]
    fn degenerate_interval_integrates_to_zero() {
        assert_eq!(trapezoid(|x| x, 1.0, 1.0, 10).unwrap(), 0.0);
        assert_eq!(simpson(|x| x, 1.0, 1.0, 10).unwrap(), 0.0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(trapezoid(|x| x, 1.0, 0.0, 10).is_err());
        assert!(simpson(|x| x, 0.0, 1.0, 0).is_err());
        assert!(trapezoid(|x| x, f64::NAN, 1.0, 10).is_err());
    }

    #[test]
    fn cumulative_matches_closed_form() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64 / 100.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
        let cum = cumulative_trapezoid(&xs, &ys).unwrap();
        // ∫ 2x dx = x^2
        for (x, c) in xs.iter().zip(cum.iter()) {
            assert!((c - x * x).abs() < 1e-4, "x={x} c={c}");
        }
    }

    #[test]
    fn cumulative_rejects_mismatched_and_unsorted() {
        assert!(cumulative_trapezoid(&[0.0, 1.0], &[0.0]).is_err());
        assert!(cumulative_trapezoid(&[0.0, 1.0, 0.5], &[1.0, 1.0, 1.0]).is_err());
        assert!(cumulative_trapezoid(&[], &[]).is_err());
    }

    #[test]
    fn simpson_handles_odd_interval_count() {
        let v = simpson(|x| x * x, 0.0, 1.0, 11).unwrap();
        assert!((v - 1.0 / 3.0).abs() < 1e-8);
    }
}
