//! Round throughput across executor widths: the scaling surface of the work-stealing
//! executor.
//!
//! Three groups, each swept over 1/2/4/8 worker threads:
//!
//! * `round_throughput_pooled` — one full federated round (auction → pooled local
//!   training → FedAvg → evaluation) on the hot-path bench configuration,
//! * `round_throughput_streamed` — one streamed million-bidder selection round (sharded
//!   batch scoring + per-shard local top-K on the pool + population-order merge, K = 64)
//!   under the golden-compatible v1 stream contract,
//! * `round_throughput_streamed_v2` — the same round on the fused single-stream v2
//!   contract (columnar derivation passes + batched grid lookup under the runtime SIMD
//!   tiers), the path the committed report's 40 ms gate asserts on.
//!
//! CI runs this bench in quick mode (`FMORE_BENCH_QUICK=1` or `-- --test`) as a
//! panic/regression smoke on every push; `examples/round_throughput_report.rs` re-times
//! the same suite with min-of-N `Instant` loops and emits the committed
//! `BENCH_round_throughput.json`, including the 8-thread-beats-1-thread gate.

use criterion::{criterion_group, criterion_main, Criterion};
use fmore_fl::engine::RoundEngine;
use fmore_mec::population::SpecVersion;
use fmore_sim::experiments::scale::{ScaleConfig, ScaleGame};
use std::time::Duration;

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn bench_pooled_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_throughput_pooled");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for threads in WIDTHS {
        let mut trainer = fmore_bench::pooled_round_trainer(threads);
        group.bench_function(&format!("round_threads{threads}"), |b| {
            b.iter(|| trainer.run_round().expect("round runs"))
        });
    }
    group.finish();
}

fn bench_streamed_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_throughput_streamed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let config = ScaleConfig::paper();
    let game = ScaleGame::new(1_000_000, &config).expect("scale game builds");
    for threads in WIDTHS {
        let engine = RoundEngine::pooled(threads);
        group.bench_function(&format!("streamed_1e6_threads{threads}"), |b| {
            b.iter(|| game.run_streamed(&engine, &config).expect("round runs"))
        });
    }
    group.finish();
}

fn bench_streamed_selection_v2(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_throughput_streamed_v2");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let config = ScaleConfig::paper().with_spec_version(SpecVersion::V2);
    let game = ScaleGame::new(1_000_000, &config).expect("scale game builds");
    for threads in WIDTHS {
        let engine = RoundEngine::pooled(threads);
        group.bench_function(&format!("streamed_1e6_threads{threads}"), |b| {
            b.iter(|| game.run_streamed(&engine, &config).expect("round runs"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pooled_round,
    bench_streamed_selection,
    bench_streamed_selection_v2
);
criterion_main!(benches);
