//! Micro-benchmarks and ablations of the auction mechanism itself.
//!
//! Covers the design choices called out in DESIGN.md: payment integration method
//! (quadrature vs the paper's Euler ODE vs Che's closed form), pricing rule (first vs second
//! price), selection rule (top-K vs ψ-FMore), and scoring-function family.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fmore_auction::prelude::*;
use fmore_numerics::{seeded_rng, Distribution1D, UniformDist};
use rand::Rng;
use std::time::Duration;

fn solver(n: usize, k: usize, method: PaymentMethod) -> EquilibriumSolver {
    EquilibriumSolver::builder()
        .scoring(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap())
        .cost(LinearCost::new(vec![2.0, 1.0]).unwrap())
        .theta(UniformDist::new(0.1, 1.0).unwrap())
        .bounds(vec![(0.0, 1.0), (0.0, 1.0)])
        .population(n)
        .winners(k)
        .payment_method(method)
        .grid_size(128)
        .build()
        .unwrap()
}

fn make_bids(n: usize, solver: &EquilibriumSolver, seed: u64) -> Vec<SubmittedBid> {
    let theta = UniformDist::new(0.1, 1.0).unwrap();
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|i| {
            let t = theta.sample(&mut rng);
            let cap = [rng.gen_range(0.3..1.0), rng.gen_range(0.3..1.0)];
            solver.capped_bid(NodeId(i as u64), t, &cap).unwrap()
        })
        .collect()
}

/// Equilibrium-strategy computation: solver construction and per-node bid derivation, plus
/// the payment-method ablation (the paper's Algorithm 1 runs the Euler route on every node).
fn bench_equilibrium(c: &mut Criterion) {
    let mut group = c.benchmark_group("equilibrium");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("solver_build_n100_k20", |b| {
        b.iter(|| solver(100, 20, PaymentMethod::Quadrature))
    });

    let quad = solver(100, 20, PaymentMethod::Quadrature);
    let euler = solver(100, 20, PaymentMethod::Euler { steps: 512 });
    let che = solver(100, 1, PaymentMethod::CheClosedForm);
    group.bench_function("bid_quadrature", |b| b.iter(|| quad.bid_for(0.4).unwrap()));
    group.bench_function("bid_euler_paper_route", |b| {
        b.iter(|| euler.bid_for(0.4).unwrap())
    });
    group.bench_function("bid_che_closed_form_k1", |b| {
        b.iter(|| che.bid_for(0.4).unwrap())
    });
    group.finish();

    // Report the ablation numbers once so the bench doubles as a correctness record.
    let p_quad = quad.payment_for(0.4).unwrap();
    let p_euler = euler.payment_for(0.4).unwrap();
    println!("payment ablation at theta=0.4: quadrature {p_quad:.4}, euler {p_euler:.4}");
}

/// One full auction round with 100 bidders under the different pricing and selection rules.
fn bench_auction_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("auction_round_n100_k20");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));

    let eq = solver(100, 20, PaymentMethod::Quadrature);
    let bids = make_bids(100, &eq, 1);
    let scoring = || ScoringRule::new(CobbDouglas::with_scale(25.0, vec![1.0, 1.0]).unwrap());

    let variants: Vec<(&str, Auction)> = vec![
        (
            "first_price_topk",
            Auction::new(scoring(), 20, SelectionRule::TopK, PricingRule::FirstPrice),
        ),
        (
            "second_price_topk",
            Auction::new(scoring(), 20, SelectionRule::TopK, PricingRule::SecondPrice),
        ),
        (
            "first_price_psi_0.8",
            Auction::new(
                scoring(),
                20,
                SelectionRule::PsiFMore { psi: 0.8 },
                PricingRule::FirstPrice,
            ),
        ),
    ];
    for (name, auction) in &variants {
        group.bench_function(name, |b| {
            b.iter_batched(
                || (bids.clone(), seeded_rng(7)),
                |(bids, mut rng)| auction.run(bids, &mut rng).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    for (name, auction) in &variants {
        let outcome = auction.run(bids.clone(), &mut seeded_rng(7)).unwrap();
        println!(
            "{name}: mean winner score {:.4}, mean winner payment {:.4}",
            outcome.mean_winner_score(),
            outcome.mean_winner_payment()
        );
    }
}

/// Scoring-function family ablation: additive vs perfect-complementary vs Cobb–Douglas.
fn bench_scoring_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("scoring_families");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    let q = vec![0.6, 0.8, 0.4];
    let additive = Additive::new(vec![0.4, 0.3, 0.3]).unwrap();
    let min_form = PerfectComplementary::new(vec![0.4, 0.3, 0.3]).unwrap();
    let cobb = CobbDouglas::new(vec![0.4, 0.3, 0.3]).unwrap();
    group.bench_function("additive", |b| {
        b.iter(|| additive.value(std::hint::black_box(&q)))
    });
    group.bench_function("perfect_complementary", |b| {
        b.iter(|| min_form.value(std::hint::black_box(&q)))
    });
    group.bench_function("cobb_douglas", |b| {
        b.iter(|| cobb.value(std::hint::black_box(&q)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_equilibrium,
    bench_auction_round,
    bench_scoring_families
);
criterion_main!(benches);
