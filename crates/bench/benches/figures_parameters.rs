//! Regenerates Figures 9–11 of the paper: the parameter studies over the population size
//! `N`, the winner count `K`, and the ψ-FMore admission probability.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmore_sim::experiments::impact_k::{run as run_k, ImpactOfKConfig};
use fmore_sim::experiments::impact_n::{auction_game_statistics, run as run_n, ImpactOfNConfig};
use fmore_sim::experiments::impact_psi::{rank_spread_for_psi, run as run_psi, ImpactOfPsiConfig};
use fmore_sim::{ScenarioRunner, Table};
use std::time::Duration;

/// Figure 9: impact of N — rounds-to-accuracy plus payment/score vs N.
fn bench_fig_9(c: &mut Criterion) {
    let mut config = ImpactOfNConfig::quick();
    config.populations = (20, 40);
    config.rounds = 8;
    config.sweep_values = vec![50, 80, 110, 140, 170, 200];
    config.k = 20;
    config.trials = 3;
    let result = run_n(&ScenarioRunner::new(), &config).expect("impact-of-N run");
    println!("\n==== Fig. 9: impact of N ====");
    println!("{}", result.to_table().to_markdown());
    let mut sweep = Table::new(
        "Payment and score vs N (Fig. 9b)",
        &["N", "mean payment", "mean score"],
    );
    for point in &result.sweep {
        sweep.push_row(&[
            point.value.to_string(),
            format!("{:.4}", point.mean_payment),
            format!("{:.4}", point.mean_score),
        ]);
    }
    println!("{}", sweep.to_markdown());

    let mut group = c.benchmark_group("fig9_auction_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for n in [50usize, 100, 200] {
        group.bench_with_input(BenchmarkId::new("auction_game", n), &n, |b, &n| {
            b.iter(|| auction_game_statistics(n, 20, 1, 3).unwrap())
        });
    }
    group.finish();
}

/// Figure 10: impact of K — rounds-to-accuracy plus payment/score vs K.
fn bench_fig_10(c: &mut Criterion) {
    let mut config = ImpactOfKConfig::quick();
    config.winner_counts = (3, 8);
    config.rounds = 8;
    config.sweep_values = vec![5, 10, 15, 20, 25, 30, 35];
    config.n = 100;
    config.trials = 3;
    let result = run_k(&ScenarioRunner::new(), &config).expect("impact-of-K run");
    println!("\n==== Fig. 10: impact of K ====");
    println!("{}", result.to_table().to_markdown());
    let mut sweep = Table::new(
        "Payment and score vs K (Fig. 10b)",
        &["K", "mean payment", "mean score"],
    );
    for point in &result.sweep {
        sweep.push_row(&[
            point.value.to_string(),
            format!("{:.4}", point.mean_payment),
            format!("{:.4}", point.mean_score),
        ]);
    }
    println!("{}", sweep.to_markdown());

    let mut group = c.benchmark_group("fig10_auction_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for k in [5usize, 20, 35] {
        group.bench_with_input(BenchmarkId::new("auction_game", k), &k, |b, &k| {
            b.iter(|| auction_game_statistics(100, k, 1, 5).unwrap())
        });
    }
    group.finish();
}

/// Figure 11: impact of ψ — training speed and the winner-rank spread.
fn bench_fig_11(c: &mut Criterion) {
    let mut config = ImpactOfPsiConfig::quick();
    config.rounds = 8;
    config.sweep_values = vec![0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    config.trials = 300;
    let result = run_psi(&ScenarioRunner::new(), &config).expect("impact-of-psi run");
    println!("\n==== Fig. 11: impact of ψ ====");
    println!("{}", result.to_table().to_markdown());
    for (target, slow, fast) in &result.rounds_to_accuracy {
        println!(
            "target {:.0}%: ψ={} reaches it in {:?} rounds, ψ={} in {:?} rounds",
            target * 100.0,
            result.psi_pair.0,
            slow,
            result.psi_pair.1,
            fast
        );
    }

    let mut group = c.benchmark_group("fig11_rank_spread");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    for psi in [0.3f64, 0.6, 0.9] {
        group.bench_with_input(
            BenchmarkId::new("rank_spread", format!("{psi:.1}")),
            &psi,
            |b, &psi| b.iter(|| rank_spread_for_psi(psi, 100, 20, 50, 9)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig_9, bench_fig_10, bench_fig_11);
criterion_main!(benches);
