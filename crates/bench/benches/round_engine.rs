//! Per-round wall-clock of the pooled `RoundEngine` vs the seed's spawn-per-round path.
//!
//! The original trainer spawned one fresh OS thread per winner every round
//! (`crossbeam::thread::scope`) and collected results through a mutex-guarded `Vec` plus a
//! sort. The refactored engine keeps a persistent worker pool and slot-indexed collection.
//! This bench times one full federated round (selection + parallel local training +
//! aggregation + evaluation) under both substrates, plus the inline baseline, on identical
//! configurations — the histories produced are bit-identical (see `tests/determinism.rs`),
//! so any delta is pure execution overhead.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fmore_fl::config::FlConfig;
use fmore_fl::engine::RoundEngine;
use fmore_fl::selection::SelectionStrategy;
use fmore_fl::trainer::FederatedTrainer;
use fmore_mec::cluster::{ClusterConfig, ClusterStrategy, MecCluster};
use fmore_mec::dynamics::{ChurnModel, DynamicsConfig};
use fmore_ml::dataset::TaskKind;
use std::time::Duration;

fn round_config() -> FlConfig {
    let mut config = FlConfig::fast_test(TaskKind::MnistO);
    // Enough winners that the per-round thread churn of the old path is visible.
    config.clients = 24;
    config.winners_per_round = 12;
    config.partition.clients = 24;
    config.train_samples = 1_200;
    config
}

fn trainer_with(engine: RoundEngine) -> FederatedTrainer {
    FederatedTrainer::with_engine(round_config(), SelectionStrategy::fmore(), 42, engine)
        .expect("bench config is valid")
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_engine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("pooled_round", |b| {
        let mut trainer = trainer_with(RoundEngine::pooled(0));
        b.iter(|| trainer.run_round().expect("round runs"))
    });

    group.bench_function("spawn_per_round", |b| {
        let mut trainer = trainer_with(RoundEngine::spawn_per_round());
        b.iter(|| trainer.run_round().expect("round runs"))
    });

    group.bench_function("inline_round", |b| {
        let mut trainer = trainer_with(RoundEngine::inline());
        b.iter(|| trainer.run_round().expect("round runs"))
    });

    // The churn-capable cluster round: membership churn, fate draws, the deadline gate, and
    // re-auction waves on top of the same pooled pipeline — what the dynamics subsystem adds
    // over a static round.
    group.bench_function("churn_round", |b| {
        let mut cluster_config = ClusterConfig::fast_test();
        cluster_config.nodes = 24;
        cluster_config.winners_per_round = 12;
        cluster_config.fl.clients = 24;
        cluster_config.fl.winners_per_round = 12;
        cluster_config.fl.partition.clients = 24;
        cluster_config.fl.train_samples = 1_200;
        let cluster_config = cluster_config.with_dynamics(
            DynamicsConfig::new(
                ChurnModel::edge_default()
                    .with_dropout(0.2)
                    .with_stragglers(0.2, 4.0),
            )
            .with_deadline(60.0),
        );
        let mut cluster = MecCluster::with_engine(
            cluster_config,
            ClusterStrategy::FMore,
            42,
            RoundEngine::pooled(0),
        )
        .expect("bench cluster config is valid");
        b.iter(|| cluster.run_round().expect("churn round runs"))
    });

    group.finish();
}

fn bench_full_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_engine_full_run");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("pooled_5_rounds", |b| {
        b.iter_batched(
            || trainer_with(RoundEngine::pooled(0)),
            |mut trainer| trainer.run(5).expect("run completes"),
            BatchSize::SmallInput,
        )
    });

    group.bench_function("spawn_per_round_5_rounds", |b| {
        b.iter_batched(
            || trainer_with(RoundEngine::spawn_per_round()),
            |mut trainer| trainer.run(5).expect("run completes"),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_round, bench_full_runs);
criterion_main!(benches);
