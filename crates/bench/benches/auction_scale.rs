//! The population-scale auction core: streamed bid generation, sharded scoring, and bounded
//! top-K selection as `N` sweeps from 10⁴ to 10⁶.
//!
//! Two groups:
//!
//! * `auction_scale_streamed` — one full selection round (lazily derived bids → columnar
//!   shard scoring → bounded selector → payments, K = 64) per population size, on the
//!   **inline** engine so the number is the single-threaded bound the ISSUE's sub-2 s
//!   million-bidder acceptance target is stated against,
//! * `auction_scale_dense` — the dense full-sort [`fmore_auction::Auction::run`] twin at
//!   the largest size it is still reasonable to materialise, for the crossover picture.
//!
//! CI runs this bench in quick mode (`cargo bench -p fmore-bench --bench auction_scale --
//! --test`) as a panic/regression smoke; `examples/auction_scale_report.rs` re-times the
//! same rounds and emits the committed `BENCH_auction_scale.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use fmore_fl::engine::RoundEngine;
use fmore_sim::experiments::scale::{ScaleConfig, ScaleGame};
use std::time::Duration;

fn config() -> ScaleConfig {
    ScaleConfig::paper()
}

fn bench_streamed(c: &mut Criterion) {
    let mut group = c.benchmark_group("auction_scale_streamed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let config = config();
    let engine = RoundEngine::inline();
    for n in [10_000usize, 100_000, 1_000_000] {
        let game = ScaleGame::new(n, &config).expect("scale game builds");
        group.bench_function(&format!("streamed_round_n{n}"), |b| {
            b.iter(|| game.run_streamed(&engine, &config).expect("round runs"))
        });
    }
    group.finish();
}

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("auction_scale_dense");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let config = config();
    for n in [10_000usize, 100_000] {
        let game = ScaleGame::new(n, &config).expect("scale game builds");
        group.bench_function(&format!("dense_round_n{n}"), |b| {
            b.iter(|| game.run_dense().expect("dense round runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streamed, bench_dense);
criterion_main!(benches);
