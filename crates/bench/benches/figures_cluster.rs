//! Regenerates Figures 12–13 of the paper: the simulated 32-node MEC cluster running
//! CIFAR-10 with FMore vs RandFL — accuracy per round, cumulative training time, and the
//! headline time-reduction / accuracy-improvement percentages.

use criterion::{criterion_group, criterion_main, Criterion};
use fmore_mec::cluster::{ClusterConfig, ClusterStrategy, MecCluster};
use fmore_sim::experiments::cluster::{run as run_cluster, ClusterExperimentConfig};
use fmore_sim::experiments::headline::{cluster_headline, headline_table};
use fmore_sim::ScenarioRunner;
use std::time::Duration;

fn bench_figs_12_13(c: &mut Criterion) {
    // Mid-size cluster: 31 nodes as in the paper but a reduced data pool and the fast
    // surrogate model so the figure regenerates in bench time.
    let mut config = ClusterExperimentConfig::quick();
    config.rounds = 10;
    config.cluster.nodes = 31;
    config.cluster.winners_per_round = 10;
    config.cluster.fl.clients = 31;
    config.cluster.fl.partition.clients = 31;
    config.cluster.fl.train_samples = 4_000;
    config.cluster.fl.test_samples = 600;
    config.accuracy_targets = vec![0.35, 0.40, 0.45, 0.50];

    let figure = run_cluster(&ScenarioRunner::new(), &config).expect("cluster figure run");
    println!("\n==== Figs. 12-13: simulated cluster deployment ====");
    println!("{}", figure.to_table().to_markdown());
    for target in &figure.accuracy_targets {
        println!(
            "time to {:.0}% accuracy: FMore {:?} s, RandFL {:?} s",
            target * 100.0,
            figure.time_to_accuracy("FMore", *target),
            figure.time_to_accuracy("RandFL", *target)
        );
    }
    let headline = cluster_headline(&figure, 0.40);
    println!("{}", headline_table(&[], Some(&headline)).to_markdown());

    // Time one full cluster round per strategy on a small deployment.
    let mut group = c.benchmark_group("fig12_13_cluster_round");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for strategy in [ClusterStrategy::FMore, ClusterStrategy::RandFL] {
        let mut cluster = MecCluster::new(ClusterConfig::fast_test(), strategy, 3).unwrap();
        group.bench_function(strategy.name(), |b| b.iter(|| cluster.run_round().unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_figs_12_13);
criterion_main!(benches);
