//! The allocation-free training hot path: in-place kernels, arena-backed epochs, and the
//! full pooled round.
//!
//! Three groups:
//!
//! * `hot_path_kernels` — the in-place matmul family against the allocating composition it
//!   replaced (`transpose()` materialisation included), on layer-sized operands,
//! * `hot_path_train_epoch` — the arena-backed `Sequential::train_epoch_in` on the
//!   quick-fidelity MLP vs the `fmore_bench::baseline::NaiveMlp` replica of the
//!   pre-refactor path (bit-identical trajectories, so the delta is pure allocation and
//!   transpose overhead) — the ISSUE's ≥2× acceptance target is measured here,
//! * `hot_path_round` — one full federated round (selection → pooled local training →
//!   FedAvg → evaluation) at 1/2/8 worker threads on slot-reused state.
//!
//! CI runs this bench in quick mode (`cargo bench -p fmore-bench --bench hot_path --
//! --test`) as a panic/regression smoke; `examples/bench_report.rs` re-times the same
//! suite and emits the committed `BENCH_hot_path.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use fmore_bench::baseline::NaiveMlp;
use fmore_ml::arena::ScratchArena;
use fmore_ml::dataset::{Dataset, SyntheticImageSpec};
use fmore_ml::layers::{Activation, Dense, Layer};
use fmore_ml::model::Model;
use fmore_ml::{Matrix, Sequential};
use fmore_numerics::seeded_rng;
use std::time::Duration;

fn quick_mlp(data: &Dataset) -> Sequential {
    let mut rng = seeded_rng(50);
    Sequential::new(vec![
        Box::new(Dense::new(data.feature_dim(), 32, &mut rng)) as Box<dyn Layer>,
        Box::new(Activation::relu()),
        Box::new(Dense::new(32, data.num_classes(), &mut rng)),
    ])
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path_kernels");
    group
        .sample_size(50)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    let mut rng = seeded_rng(51);
    // Layer-sized operands: a 32-sample batch against a 64×64 weight block.
    let a = Matrix::random_uniform(32, 64, 1.0, &mut rng);
    let w = Matrix::random_uniform(64, 64, 1.0, &mut rng);
    let g = Matrix::random_uniform(32, 64, 1.0, &mut rng);

    group.bench_function("matmul_alloc", |b| b.iter(|| a.matmul(&w)));
    group.bench_function("matmul_into", |b| {
        let mut out = Matrix::default();
        b.iter(|| a.matmul_into(&w, &mut out))
    });
    group.bench_function("transpose_a_alloc", |b| b.iter(|| a.transpose().matmul(&g)));
    group.bench_function("transpose_a_into", |b| {
        let mut out = Matrix::default();
        b.iter(|| a.matmul_transpose_a_into(&g, &mut out))
    });
    group.bench_function("transpose_b_alloc", |b| b.iter(|| g.matmul(&w.transpose())));
    group.bench_function("transpose_b_into", |b| {
        let mut out = Matrix::default();
        b.iter(|| g.matmul_transpose_b_into(&w, &mut out))
    });
    group.finish();
}

fn bench_train_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path_train_epoch");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let mut data_rng = seeded_rng(52);
    let data = SyntheticImageSpec::mnist_like().generate(400, &mut data_rng);
    let all: Vec<usize> = (0..data.len()).collect();

    group.bench_function("arena_mlp", |b| {
        let mut model = quick_mlp(&data);
        let mut arena = ScratchArena::new();
        let mut rng = seeded_rng(53);
        b.iter(|| model.train_epoch_in(&mut arena, &data, &all, 0.1, 16, &mut rng))
    });

    group.bench_function("naive_mlp_baseline", |b| {
        let template = quick_mlp(&data);
        let mut naive = NaiveMlp::from_params(
            data.feature_dim(),
            32,
            data.num_classes(),
            &template.parameters(),
        );
        let mut rng = seeded_rng(53);
        b.iter(|| naive.train_epoch(&data, &all, 0.1, 16, &mut rng))
    });
    group.finish();
}

fn bench_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path_round");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    for threads in [1usize, 2, 8] {
        group.bench_function(&format!("pooled_round_{threads}_threads"), |b| {
            let mut trainer = fmore_bench::pooled_round_trainer(threads);
            b.iter(|| trainer.run_round().expect("round runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_train_epoch, bench_round);
criterion_main!(benches);
