//! Regenerates Figures 4–8 of the paper: accuracy/loss per round for FMore vs RandFL vs
//! FixFL on each of the four tasks, and the winner-score distribution.
//!
//! The bench prints the regenerated table for every figure (scaled-down configuration, see
//! EXPERIMENTS.md) and then times one training round per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmore_fl::selection::SelectionStrategy;
use fmore_fl::trainer::FederatedTrainer;
use fmore_ml::dataset::TaskKind;
use fmore_sim::experiments::accuracy::{run as run_accuracy, AccuracyConfig};
use fmore_sim::experiments::headline::{headline_table, simulation_headline};
use fmore_sim::experiments::scores::run as run_scores;
use fmore_sim::ScenarioRunner;
use std::time::Duration;

fn figure_config(task: TaskKind) -> AccuracyConfig {
    // Mid-size configuration: large enough to show the selection effect, small enough to
    // regenerate all four figures in a few minutes of bench time.
    let mut config = AccuracyConfig::quick(task);
    config.rounds = 10;
    config.fl.clients = 50;
    config.fl.winners_per_round = 10;
    config.fl.partition.clients = 50;
    config.fl.train_samples = 4_000;
    config.fl.test_samples = 600;
    config
}

/// Figures 4–7: accuracy and loss per round for each task; also prints the headline table
/// (round reduction / accuracy improvement vs RandFL).
fn bench_figs_4_to_7(c: &mut Criterion) {
    let tasks = [
        (TaskKind::MnistO, 0.90, "Fig. 4"),
        (TaskKind::MnistF, 0.80, "Fig. 5"),
        (TaskKind::Cifar10, 0.50, "Fig. 6"),
        (TaskKind::HpNews, 0.46, "Fig. 7"),
    ];
    let mut headlines = Vec::new();
    for (task, target, label) in tasks {
        let config = figure_config(task);
        let figure = run_accuracy(&ScenarioRunner::new(), &config).expect("figure run");
        println!("\n==== {label}: {} ====", task.name());
        println!("{}", figure.to_table().to_markdown());
        headlines.push(simulation_headline(&figure, target));
    }
    println!("{}", headline_table(&headlines, None).to_markdown());

    // Time one federated round per scheme on the MNIST-O task.
    let mut group = c.benchmark_group("fig4_7_one_round");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for strategy in [SelectionStrategy::fmore(), SelectionStrategy::random()] {
        let name = strategy.name().to_string();
        let config = figure_config(TaskKind::MnistO);
        let mut trainer = FederatedTrainer::new(config.fl.clone(), strategy, 42).unwrap();
        group.bench_with_input(BenchmarkId::new("round", name), &(), |b, _| {
            b.iter(|| trainer.run_round().unwrap())
        });
    }
    group.finish();
}

/// Figure 8: the winner-score distribution per scheme.
fn bench_fig_8(c: &mut Criterion) {
    let config = figure_config(TaskKind::Cifar10);
    let dist = run_scores(&ScenarioRunner::new(), &config).expect("score distribution run");
    println!("\n==== Fig. 8: winner-score distribution (CIFAR-10) ====");
    println!("{}", dist.to_table().to_markdown());
    for scheme in &dist.schemes {
        let series = dist.cumulative_proportions(&scheme.winner_scores, 10);
        println!(
            "{} cumulative proportions: {:?}",
            scheme.strategy, series.ys
        );
    }

    let mut group = c.benchmark_group("fig8_score_distribution");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    let quick = AccuracyConfig::quick(TaskKind::MnistO);
    group.bench_function("quick_distribution", |b| {
        b.iter(|| run_scores(&ScenarioRunner::new(), &quick).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_figs_4_to_7, bench_fig_8);
criterion_main!(benches);
