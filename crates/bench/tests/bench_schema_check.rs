//! Pins every committed `BENCH_*.json` to the schema version its generator example
//! currently emits. Bumping a report's `schema_string` without regenerating (and
//! re-committing) the JSON — or regenerating under a new layout without bumping the
//! version — fails here instead of silently shipping a document whose fields no longer
//! mean what the schema says.

use fmore_bench::timing::schema_string;
use std::path::Path;

/// Reads the `schema` field of a committed report at the repository root. The offline
/// workspace has no serde; the reports are hand-formatted with `schema` as the first
/// field, so a line scan is exact.
fn committed_schema(file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file);
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{file} must be committed at the repo root: {e}"));
    json.lines()
        .find_map(|line| {
            line.trim()
                .strip_prefix("\"schema\": \"")
                .and_then(|rest| rest.strip_suffix("\","))
                .map(str::to_string)
        })
        .unwrap_or_else(|| panic!("{file} carries no schema field"))
}

#[test]
fn every_committed_bench_report_carries_its_generators_schema() {
    for (file, name, version) in [
        ("BENCH_hot_path.json", "hot-path", 1),
        ("BENCH_auction_scale.json", "auction-scale", 3),
        ("BENCH_round_throughput.json", "round-throughput", 3),
        ("BENCH_service.json", "service", 3),
    ] {
        assert_eq!(
            committed_schema(file),
            schema_string(name, version),
            "{file}: the committed report's schema does not match its generator — \
             regenerate the report (see the example's doc header) and re-commit it"
        );
    }
}
