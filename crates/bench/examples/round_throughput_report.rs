//! Emits `BENCH_round_throughput.json` — the committed record of how the round pipeline
//! scales with executor width. Four suites on the work-stealing pool:
//!
//! * **pooled round** — one full federated round (auction → pooled local training →
//!   FedAvg → evaluation) on the hot-path bench configuration (24 clients, 12 winners),
//!   swept over 1/2/4/8 worker threads,
//! * **streamed selection, spec v1** — one million-bidder selection round (lazily derived
//!   bids → sharded batch scoring → per-shard local top-K on the pool → population-order
//!   merge, K = 64) under the golden-compatible two-stream population contract,
//! * **streamed selection, spec v2** — the same round under the fused single-stream
//!   contract (`NodePopulation::bid_into`), the fast path the 40 ms target is asserted on,
//! * **straggler fan-out** — the straggler-heavy local-training fan-out (seven uniform
//!   winners plus one 7×-data straggler submitted last) on a 2-worker pool, per-winner
//!   dispatch vs the chain scheduler's per-batch units: the longest-remaining-first policy
//!   must start the straggler immediately instead of leaving it to serialise the tail.
//!
//! `FMORE_BENCH_QUICK` shrinks the population to 10⁵ so CI can afford the run on every
//! push.
//!
//! ```bash
//! cargo run --release -p fmore-bench --example round_throughput_report -- BENCH_round_throughput.json
//! ```
//!
//! The report records `hardware_threads` next to its numbers and scales its assertions
//! accordingly: on a multi-core runner the 8-thread pooled round **must** beat the
//! 1-thread round (the regression this report exists to prevent — the pre-executor pool
//! showed zero scaling); on a single-core runner real speedup is physically impossible,
//! so that gate degrades to a contention guard, and the JSON says which regime was
//! measured. The ISSUE's 40 ms million-bidder target **asserts on the v2 path** at full
//! fidelity (the fused derivation is what the target was set for); the v1 pair rides
//! along as the recorded baseline, still covered by the hardware-independent contention
//! guard.

use fmore_bench::timing::{hardware_threads, min_time_ns, quick_mode, schema_string, write_report};
use fmore_fl::engine::{local_training_with, FanOutGranularity, RoundEngine};
use fmore_mec::population::SpecVersion;
use fmore_sim::experiments::scale::{ScaleConfig, ScaleGame};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Sweeps one streamed million-bidder selection round over the executor widths.
fn sweep_streamed(
    population: usize,
    config: &ScaleConfig,
    warmup: usize,
    samples: usize,
) -> Vec<(usize, u128)> {
    let game = ScaleGame::new(population, config).expect("scale game builds");
    WIDTHS
        .iter()
        .map(|&threads| {
            let engine = RoundEngine::pooled(threads);
            let ns = min_time_ns(warmup, samples, || {
                let stage = game.run_streamed(&engine, config).expect("round runs");
                assert_eq!(stage.winners.len(), 64);
            });
            (threads, ns)
        })
        .collect()
}

fn push_ns_object(json: &mut String, key: &str, rows: &[(usize, u128)], trailing_comma: bool) {
    json.push_str(&format!("  \"{key}\": {{\n"));
    for (i, (threads, ns)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!("    \"threads_{threads}\": {ns}{comma}\n"));
    }
    json.push_str(if trailing_comma { "  },\n" } else { "  }\n" });
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_round_throughput.json".to_string());
    let quick = quick_mode();
    let hw = hardware_threads();

    // --- Pooled federated round (the shared workload) at each executor width. ---
    let (round_warmup, round_samples) = if quick { (1, 8) } else { (3, 30) };
    let mut round_ns = Vec::new();
    for &threads in &WIDTHS {
        let mut trainer = fmore_bench::pooled_round_trainer(threads);
        let ns = min_time_ns(round_warmup, round_samples, || {
            trainer.run_round().expect("round runs");
        });
        round_ns.push((threads, ns));
    }

    // --- Straggler-heavy fan-out: per-winner vs per-batch dispatch on a 2-worker pool. ---
    let (small, straggler) = if quick { (200, 1_400) } else { (400, 2_800) };
    let fan_samples = if quick { 3 } else { 8 };
    let fan_engine = RoundEngine::pooled(2);
    let time_fanout = |granularity: FanOutGranularity| {
        min_time_ns(1, fan_samples, || {
            let jobs = fmore_bench::straggler_fanout_jobs(small, straggler);
            let updates =
                local_training_with(&fan_engine, jobs, granularity).expect("fan-out runs");
            assert_eq!(updates.len(), 8);
        })
    };
    let per_winner_ns = time_fanout(FanOutGranularity::PerWinner);
    let per_batch_ns = time_fanout(FanOutGranularity::PerBatch);
    let fanout_speedup = per_winner_ns as f64 / per_batch_ns as f64;

    // --- Streamed million-bidder selection round, spec v1 vs v2, at each width. ---
    let population = if quick { 100_000 } else { 1_000_000 };
    let (sel_warmup, sel_samples) = if quick { (1, 3) } else { (2, 5) };
    let config_v1 = ScaleConfig::paper();
    let config_v2 = ScaleConfig::paper().with_spec_version(SpecVersion::V2);
    let streamed_v1 = sweep_streamed(population, &config_v1, sel_warmup, sel_samples);
    let streamed_v2 = sweep_streamed(population, &config_v2, sel_warmup, sel_samples);

    let round_1t = round_ns[0].1;
    let round_8t = round_ns[WIDTHS.len() - 1].1;
    let round_speedup = round_1t as f64 / round_8t as f64;
    let v1_1t = streamed_v1[0].1;
    let best_v1 = streamed_v1.iter().map(|&(_, ns)| ns).min().unwrap();
    let v2_1t = streamed_v2[0].1;
    let best_v2 = streamed_v2.iter().map(|&(_, ns)| ns).min().unwrap();
    let best_v1_ms = best_v1 as f64 / 1e6;
    let best_v2_ms = best_v2 as f64 / 1e6;
    let target_met = !quick && best_v2_ms < 40.0;

    // --- Emit the JSON document (no serde in the offline workspace; hand-formatted). ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        schema_string("round-throughput", 3)
    ));
    json.push_str(
        "  \"note\": \"min-of-N wall-clock per executor width; regenerate with `cargo run --release -p fmore-bench --example round_throughput_report`\",\n",
    );
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str(&format!("  \"quick_mode\": {quick},\n"));
    push_ns_object(&mut json, "pooled_round_ns", &round_ns, true);
    json.push_str(&format!(
        "  \"pooled_round_speedup_8t\": {round_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"straggler_fanout\": {{ \"jobs\": 8, \"small\": {small}, \"straggler\": {straggler}, \
         \"pool_threads\": 2, \"per_winner_ns\": {per_winner_ns}, \"per_batch_ns\": {per_batch_ns}, \
         \"per_batch_speedup\": {fanout_speedup:.2} }},\n"
    ));
    json.push_str(&format!(
        "  \"streamed_round\": {{ \"population\": {population}, \"k\": 64 }},\n"
    ));
    json.push_str("  \"streamed_round_v1\": { \"spec_version\": \"v1\" },\n");
    push_ns_object(&mut json, "streamed_round_v1_ns", &streamed_v1, true);
    json.push_str(&format!(
        "  \"streamed_round_v1_best_ms\": {best_v1_ms:.3},\n"
    ));
    json.push_str("  \"streamed_round_v2\": { \"spec_version\": \"v2\" },\n");
    push_ns_object(&mut json, "streamed_round_v2_ns", &streamed_v2, true);
    json.push_str(&format!(
        "  \"streamed_round_v2_best_ms\": {best_v2_ms:.3},\n"
    ));
    json.push_str(&format!(
        "  \"streamed_round_target\": {{ \"ms\": 40, \"spec_version\": \"v2\", \"met\": {target_met} }}\n"
    ));
    json.push_str("}\n");

    write_report(&out_path, &json);
    eprintln!(
        "wrote {out_path} (8-thread round speedup {round_speedup:.2}x on {hw} hardware threads; \
         best streamed {population}-bidder round v1 {best_v1_ms:.1} ms, v2 {best_v2_ms:.1} ms; \
         straggler fan-out per-batch speedup {fanout_speedup:.2}x)"
    );

    // --- Gates. ---
    if hw >= 2 {
        // The regression this report exists to prevent: before the work-stealing executor
        // the pooled round showed zero scaling (1.72 ms at 1 thread vs 1.76 ms at 8).
        assert!(
            round_8t < round_1t,
            "8-thread pooled round ({round_8t} ns) is not faster than 1-thread ({round_1t} ns) \
             on {hw} hardware threads"
        );
    } else {
        // Single-core runner: speedup is physically impossible; only guard against the
        // executor *adding* contention cost. With the submitter executing injector units,
        // a width-8 pool on one core is the same serial work plus queue traffic — it must
        // never lose to width-1 by more than the contention bound.
        assert!(
            round_8t as f64 <= round_1t as f64 * 1.5,
            "8-thread pooled round ({round_8t} ns) is drastically slower than 1-thread \
             ({round_1t} ns) on a single-core runner — executor contention regression"
        );
    }
    if hw >= 2 {
        // The win the chain scheduler was built for: on a real multi-core machine the
        // per-batch units let the straggler start first (longest-remaining-first), so the
        // fan-out must beat the per-winner dispatch that strands the straggler at the tail.
        assert!(
            per_batch_ns < per_winner_ns,
            "per-batch fan-out ({per_batch_ns} ns) did not beat per-winner dispatch \
             ({per_winner_ns} ns) on the straggler-heavy round with {hw} hardware threads"
        );
    } else {
        // Single-core runner: both dispatches serialise the same work, so only guard
        // against the chain scheduler adding contention cost per unit.
        assert!(
            per_batch_ns as f64 <= per_winner_ns as f64 * 1.5,
            "per-batch fan-out ({per_batch_ns} ns) is drastically slower than per-winner \
             ({per_winner_ns} ns) on a single-core runner — chain scheduler contention \
             regression"
        );
    }
    // Hardware-independent contention guards for both streamed pairs: widening the pool
    // must never make selection drastically slower than running it on one worker.
    for (label, best, one_t) in [("v1", best_v1, v1_1t), ("v2", best_v2, v2_1t)] {
        assert!(
            best as f64 <= one_t as f64 * 1.5,
            "best multi-threaded streamed {label} round ({best} ns) is drastically slower \
             than the 1-thread round ({one_t} ns) — executor contention regression"
        );
    }
    // The ISSUE's 40 ms million-bidder target, asserted on the fused v2 path at full
    // fidelity — the whole point of the single-stream derivation.
    if !quick {
        assert!(
            best_v2_ms < 40.0,
            "v2 streamed {population}-bidder round took {best_v2_ms:.3} ms — the fused \
             bid path must clear the 40 ms target"
        );
    }
}
