//! Emits `BENCH_round_throughput.json` — the committed record of how the round pipeline
//! scales with executor width. Two suites, each swept over 1/2/4/8 worker threads on the
//! work-stealing pool:
//!
//! * **pooled round** — one full federated round (auction → pooled local training →
//!   FedAvg → evaluation) on the hot-path bench configuration (24 clients, 12 winners),
//! * **streamed selection** — one million-bidder selection round (lazily derived bids →
//!   sharded batch scoring → per-shard local top-K on the pool → population-order merge,
//!   K = 64); `FMORE_BENCH_QUICK` shrinks the population to 10⁵ so CI can afford the run
//!   on every push.
//!
//! ```bash
//! cargo run --release -p fmore-bench --example round_throughput_report -- BENCH_round_throughput.json
//! ```
//!
//! The report records `hardware_threads` next to its numbers and scales its assertions
//! accordingly: on a multi-core runner the 8-thread pooled round **must** beat the
//! 1-thread round (the regression this report exists to prevent — the pre-executor pool
//! showed zero scaling); on a single-core runner real speedup is physically impossible,
//! so that gate degrades to a contention guard, and the JSON says which regime was
//! measured. The ISSUE's 40 ms multi-threaded million-bidder target is *recorded*
//! (`streamed_round_target.met`) rather than asserted — an absolute wall-clock bound on
//! a shared runner would turn variance into a red build — while a hardware-independent
//! contention guard still fails the job if widening the pool makes selection slower.

use fmore_bench::timing::{hardware_threads, min_time_ns, quick_mode, schema_string, write_report};
use fmore_fl::engine::RoundEngine;
use fmore_sim::experiments::scale::{ScaleConfig, ScaleGame};

const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_round_throughput.json".to_string());
    let quick = quick_mode();
    let hw = hardware_threads();

    // --- Pooled federated round (the shared workload) at each executor width. ---
    let (round_warmup, round_samples) = if quick { (1, 8) } else { (3, 30) };
    let mut round_ns = Vec::new();
    for &threads in &WIDTHS {
        let mut trainer = fmore_bench::pooled_round_trainer(threads);
        let ns = min_time_ns(round_warmup, round_samples, || {
            trainer.run_round().expect("round runs");
        });
        round_ns.push((threads, ns));
    }

    // --- Streamed million-bidder selection round at each executor width. ---
    let population = if quick { 100_000 } else { 1_000_000 };
    let (sel_warmup, sel_samples) = if quick { (1, 3) } else { (2, 5) };
    let config = ScaleConfig::paper();
    let game = ScaleGame::new(population, &config).expect("scale game builds");
    let mut streamed_ns = Vec::new();
    for &threads in &WIDTHS {
        let engine = RoundEngine::pooled(threads);
        let ns = min_time_ns(sel_warmup, sel_samples, || {
            let stage = game.run_streamed(&engine, &config).expect("round runs");
            assert_eq!(stage.winners.len(), 64);
        });
        streamed_ns.push((threads, ns));
    }

    let round_1t = round_ns[0].1;
    let round_8t = round_ns[WIDTHS.len() - 1].1;
    let round_speedup = round_1t as f64 / round_8t as f64;
    let streamed_1t = streamed_ns[0].1;
    let best_streamed = streamed_ns.iter().map(|&(_, ns)| ns).min().unwrap();
    let best_streamed_ms = best_streamed as f64 / 1e6;
    // The ISSUE's multi-threaded million-bidder target: recorded in the report (so the
    // committed JSON tracks whether the hardware reached it) rather than asserted — an
    // absolute wall-clock bound would turn runner variance into a red build.
    let target_met = !quick && best_streamed_ms < 40.0;

    // --- Emit the JSON document (no serde in the offline workspace; hand-formatted). ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        schema_string("round-throughput", 1)
    ));
    json.push_str(
        "  \"note\": \"min-of-N wall-clock per executor width; regenerate with `cargo run --release -p fmore-bench --example round_throughput_report`\",\n",
    );
    json.push_str(&format!("  \"hardware_threads\": {hw},\n"));
    json.push_str(&format!("  \"quick_mode\": {quick},\n"));
    json.push_str("  \"pooled_round_ns\": {\n");
    for (i, (threads, ns)) in round_ns.iter().enumerate() {
        let comma = if i + 1 < round_ns.len() { "," } else { "" };
        json.push_str(&format!("    \"threads_{threads}\": {ns}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"pooled_round_speedup_8t\": {round_speedup:.2},\n"
    ));
    json.push_str(&format!(
        "  \"streamed_round\": {{ \"population\": {population}, \"k\": 64 }},\n"
    ));
    json.push_str("  \"streamed_round_ns\": {\n");
    for (i, (threads, ns)) in streamed_ns.iter().enumerate() {
        let comma = if i + 1 < streamed_ns.len() { "," } else { "" };
        json.push_str(&format!("    \"threads_{threads}\": {ns}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"streamed_round_best_ms\": {best_streamed_ms:.3},\n"
    ));
    json.push_str(&format!(
        "  \"streamed_round_target\": {{ \"ms\": 40, \"met\": {target_met} }}\n"
    ));
    json.push_str("}\n");

    write_report(&out_path, &json);
    eprintln!(
        "wrote {out_path} (8-thread round speedup {round_speedup:.2}x on {hw} hardware threads; \
         best streamed {population}-bidder round {best_streamed_ms:.1} ms)"
    );

    // --- Gates. ---
    if hw >= 2 {
        // The regression this report exists to prevent: before the work-stealing executor
        // the pooled round showed zero scaling (1.72 ms at 1 thread vs 1.76 ms at 8).
        assert!(
            round_8t < round_1t,
            "8-thread pooled round ({round_8t} ns) is not faster than 1-thread ({round_1t} ns) \
             on {hw} hardware threads"
        );
    } else {
        // Single-core runner: speedup is physically impossible; only guard against the
        // executor *adding* contention cost.
        assert!(
            round_8t as f64 <= round_1t as f64 * 1.5,
            "8-thread pooled round ({round_8t} ns) is drastically slower than 1-thread \
             ({round_1t} ns) on a single-core runner — executor contention regression"
        );
    }
    // Hardware-independent contention guard for the streamed round: widening the pool
    // must never make selection drastically slower than running it on one worker.
    assert!(
        best_streamed as f64 <= streamed_1t as f64 * 1.5,
        "best multi-threaded streamed round ({best_streamed} ns) is drastically slower \
         than the 1-thread round ({streamed_1t} ns) — executor contention regression"
    );
}
