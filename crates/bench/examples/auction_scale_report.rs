//! Emits `BENCH_auction_scale.json` — the committed perf-trajectory record of the
//! population-scale auction core. Re-times the same rounds as `benches/auction_scale.rs`
//! with plain `Instant` loops (min-of-N, far more stable across CI machines than means) and
//! writes one JSON document with per-`N` streamed selection times under **both** population
//! stream contracts (v1 two-stream, v2 fused single-stream), the dense twin where it is
//! still reasonable to materialise, and the peak resident bid bytes of each streamed round.
//!
//! ```bash
//! cargo run --release -p fmore-bench --example auction_scale_report -- BENCH_auction_scale.json
//! ```
//!
//! Regenerate (and re-commit) after any change to the bid store, the tie-break keys, the
//! bounded selector, or the sharded collection stage, so the repository tracks how each PR
//! moved the selection path. Acceptance gates asserted at the bottom: a 1,000,000-bidder
//! round (bid generation + scoring + top-K selection, K = 64) under 2 s single-threaded, a
//! 10,000,000-bidder round under 20 s, and — the memory story — peak resident bid bytes
//! **identical** across every streamed row of both contracts AND the ψ-FMore rows (the
//! 8192-bid shard, not the population, is the footprint). The v3 schema adds the
//! `streamed_round_psi` section: ψ = 0.8 selection through the bounded two-pass admission,
//! swept to **10⁸ bidders** at full fidelity — the 1e8 row must hold the same flat peak as
//! the 1e6 row, the whole point of the histogram-planned walk. `FMORE_BENCH_QUICK=1`
//! shrinks the ψ sweep to 1e7 for smoke runs.

use fmore_auction::SelectionRule;
use fmore_bench::timing::{min_time_ns as time_ns, quick_mode, schema_string, write_report};
use fmore_fl::engine::RoundEngine;
use fmore_mec::population::SpecVersion;
use fmore_sim::experiments::scale::{ScaleConfig, ScaleGame};

fn streamed_rows(
    config: &ScaleConfig,
    selection: SelectionRule,
    engine: &RoundEngine,
    points: &[(usize, usize)],
) -> Vec<(usize, u128, usize)> {
    points
        .iter()
        .map(|&(n, samples)| {
            let game = ScaleGame::with_selection(n, config, selection).expect("scale game builds");
            let mut peak_bytes = 0usize;
            let ns = time_ns(1, samples, || {
                let stage = game.run_streamed(engine, config).expect("round runs");
                peak_bytes = stage.peak_bid_bytes;
                assert_eq!(stage.winners.len(), 64);
            });
            (n, ns, peak_bytes)
        })
        .collect()
}

fn push_streamed_section(json: &mut String, key: &str, rows: &[(usize, u128, usize)]) {
    json.push_str(&format!("  \"{key}\": {{\n"));
    for (i, (n, ns, peak)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"n_{n}\": {{ \"ns\": {ns}, \"peak_bid_bytes\": {peak} }}{comma}\n"
        ));
    }
    json.push_str("  },\n");
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_auction_scale.json".to_string());

    let quick = quick_mode();
    let config = ScaleConfig::paper();
    let config_v2 = ScaleConfig::paper().with_spec_version(SpecVersion::V2);
    let engine = RoundEngine::inline();

    // --- Streamed rounds, single-threaded: v1 from 1e4 to 1e7, v2 at the heavy sizes. ---
    let streamed = streamed_rows(
        &config,
        SelectionRule::TopK,
        &engine,
        &[(10_000, 20), (100_000, 10), (1_000_000, 5), (10_000_000, 3)],
    );
    let streamed_v2 = streamed_rows(
        &config_v2,
        SelectionRule::TopK,
        &engine,
        &[(1_000_000, 5), (10_000_000, 3)],
    );

    // --- ψ-FMore through the bounded two-pass admission, swept to 1e8 at full fidelity.
    // ψ = 0.8 with K = 64 and reserve = 64 keeps the admission walk inside the standing
    // pool with overwhelming probability, so the fast (no-refinement) path carries the
    // sweep and the peak must sit exactly on the top-K rows' shard-scale plateau.
    let psi_points: &[(usize, usize)] = if quick {
        &[(1_000_000, 3), (10_000_000, 1)]
    } else {
        &[(1_000_000, 3), (10_000_000, 2), (100_000_000, 1)]
    };
    let streamed_psi = streamed_rows(
        &config,
        SelectionRule::PsiFMore { psi: 0.8 },
        &engine,
        psi_points,
    );

    // --- Dense twins where materialising the population is still reasonable. ---
    let mut dense = Vec::new();
    for (n, samples) in [(10_000usize, 20), (100_000, 10)] {
        let game = ScaleGame::new(n, &config).expect("scale game builds");
        let ns = time_ns(2, samples, || {
            let outcome = game.run_dense().expect("dense round runs");
            assert_eq!(outcome.winners().len(), 64);
        });
        dense.push((n, ns));
    }

    // --- Emit the JSON document (no serde in the offline workspace; hand-formatted). ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        schema_string("auction-scale", 3)
    ));
    json.push_str(
        "  \"note\": \"min-of-N wall-clock of one selection round (bid generation + scoring + selection, K=64), single-threaded, under the v1 and v2 population stream contracts; streamed_round_psi is psi-FMore (psi=0.8) through the bounded two-pass admission, swept to 1e8 bidders at the same flat shard-scale peak; regenerate with `cargo run --release -p fmore-bench --example auction_scale_report`\",\n",
    );
    json.push_str(&format!("  \"quick_mode\": {quick},\n"));
    push_streamed_section(&mut json, "streamed_round", &streamed);
    push_streamed_section(&mut json, "streamed_round_v2", &streamed_v2);
    push_streamed_section(&mut json, "streamed_round_psi", &streamed_psi);
    json.push_str("  \"dense_round\": {\n");
    for (i, (n, ns)) in dense.iter().enumerate() {
        let comma = if i + 1 < dense.len() { "," } else { "" };
        json.push_str(&format!("    \"n_{n}\": {{ \"ns\": {ns} }}{comma}\n"));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    write_report(&out_path, &json);
    let row = |rows: &[(usize, u128, usize)], n: usize| {
        rows.iter()
            .find(|r| r.0 == n)
            .copied()
            .expect("row was timed")
    };
    let (_, million_ns, million_peak) = row(&streamed, 1_000_000);
    let (_, ten_million_ns, _) = row(&streamed, 10_000_000);
    let million_secs = million_ns as f64 / 1e9;
    let ten_million_secs = ten_million_ns as f64 / 1e9;
    let psi_deepest = streamed_psi.last().expect("psi sweep is non-empty");
    eprintln!(
        "wrote {out_path} (1e6 round: {million_secs:.3}s, 1e7 round: {ten_million_secs:.3}s, \
         v2 1e7: {:.3}s, psi 1e{}: {:.3}s, peak {million_peak} bid bytes)",
        row(&streamed_v2, 10_000_000).1 as f64 / 1e9,
        (psi_deepest.0 as f64).log10().round() as u32,
        psi_deepest.1 as f64 / 1e9,
    );

    // Acceptance gates. First the wall-clock trajectory...
    assert!(
        million_secs < 2.0,
        "1e6-bidder selection round regressed past the 2s acceptance gate ({million_secs:.3}s)"
    );
    assert!(
        ten_million_secs < 20.0,
        "1e7-bidder selection round regressed past the 20s acceptance gate ({ten_million_secs:.3}s)"
    );
    // ...then the memory story: every streamed row of both contracts AND the ψ sweep holds
    // the identical shard-scale peak — growing the population 1000x (to 1e8 for ψ),
    // switching stream contract, or switching to the histogram-planned ψ admission must
    // not move resident bid memory at all. This is the ISSUE's 1e8 acceptance gate: the
    // deepest ψ row (1e8 at full fidelity) completes at the 1e6 row's flat peak.
    for (n, _, peak) in streamed.iter().chain(&streamed_v2).chain(&streamed_psi) {
        assert_eq!(
            *peak, million_peak,
            "streamed peak bid bytes drifted at n={n}: {peak} != {million_peak} — the flat \
             memory contract of the 8192-bid shard is broken"
        );
    }
    assert!(
        quick || psi_deepest.0 == 100_000_000,
        "the full-fidelity psi sweep must reach 1e8 bidders (got {})",
        psi_deepest.0
    );
    assert!(
        million_peak < 1_000_000 * 48 / 10,
        "streamed peak bid bytes ({million_peak}) is no longer an order of magnitude below a dense store"
    );
}
