//! Emits `BENCH_auction_scale.json` — the committed perf-trajectory record of the
//! population-scale auction core. Re-times the same rounds as `benches/auction_scale.rs`
//! with plain `Instant` loops (min-of-N, far more stable across CI machines than means) and
//! writes one JSON document with per-`N` streamed selection times, the dense twin where it
//! is still reasonable to materialise, and the peak resident bid bytes of each streamed
//! round.
//!
//! ```bash
//! cargo run --release -p fmore-bench --example auction_scale_report -- BENCH_auction_scale.json
//! ```
//!
//! Regenerate (and re-commit) after any change to the bid store, the tie-break keys, the
//! bounded selector, or the sharded collection stage, so the repository tracks how each PR
//! moved the selection path. The ISSUE acceptance gate is asserted at the bottom: a
//! 1,000,000-bidder round (bid generation + scoring + top-K selection, K = 64) must finish
//! in under 2 s single-threaded.

use fmore_bench::timing::{min_time_ns as time_ns, schema_string, write_report};
use fmore_fl::engine::RoundEngine;
use fmore_sim::experiments::scale::{ScaleConfig, ScaleGame};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_auction_scale.json".to_string());

    let config = ScaleConfig::paper();
    let engine = RoundEngine::inline();

    // --- Streamed rounds, single-threaded, N from 1e4 to 1e6. ---
    let mut streamed = Vec::new();
    for (n, samples) in [(10_000usize, 20), (100_000, 10), (1_000_000, 5)] {
        let game = ScaleGame::new(n, &config).expect("scale game builds");
        let mut peak_bytes = 0usize;
        let ns = time_ns(2, samples, || {
            let stage = game.run_streamed(&engine, &config).expect("round runs");
            peak_bytes = stage.peak_bid_bytes;
            assert_eq!(stage.winners.len(), 64);
        });
        streamed.push((n, ns, peak_bytes));
    }

    // --- Dense twins where materialising the population is still reasonable. ---
    let mut dense = Vec::new();
    for (n, samples) in [(10_000usize, 20), (100_000, 10)] {
        let game = ScaleGame::new(n, &config).expect("scale game builds");
        let ns = time_ns(2, samples, || {
            let outcome = game.run_dense().expect("dense round runs");
            assert_eq!(outcome.winners().len(), 64);
        });
        dense.push((n, ns));
    }

    // --- Emit the JSON document (no serde in the offline workspace; hand-formatted). ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        schema_string("auction-scale", 1)
    ));
    json.push_str(
        "  \"note\": \"min-of-N wall-clock of one selection round (bid generation + scoring + top-K, K=64), single-threaded; regenerate with `cargo run --release -p fmore-bench --example auction_scale_report`\",\n",
    );
    json.push_str("  \"streamed_round\": {\n");
    for (i, (n, ns, peak)) in streamed.iter().enumerate() {
        let comma = if i + 1 < streamed.len() { "," } else { "" };
        json.push_str(&format!(
            "    \"n_{n}\": {{ \"ns\": {ns}, \"peak_bid_bytes\": {peak} }}{comma}\n"
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"dense_round\": {\n");
    for (i, (n, ns)) in dense.iter().enumerate() {
        let comma = if i + 1 < dense.len() { "," } else { "" };
        json.push_str(&format!("    \"n_{n}\": {{ \"ns\": {ns} }}{comma}\n"));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    write_report(&out_path, &json);
    let (_, million_ns, million_peak) = streamed[streamed.len() - 1];
    let million_secs = million_ns as f64 / 1e9;
    eprintln!(
        "wrote {out_path} (1e6-bidder round: {million_secs:.3}s, peak {million_peak} bid bytes)"
    );
    // The ISSUE acceptance gate: a million-bidder round in under 2 s single-threaded, with
    // shard-scale (not population-scale) transient bid memory.
    assert!(
        million_secs < 2.0,
        "1e6-bidder selection round regressed past the 2s acceptance gate ({million_secs:.3}s)"
    );
    assert!(
        million_peak < 1_000_000 * 48 / 10,
        "streamed peak bid bytes ({million_peak}) is no longer an order of magnitude below a dense store"
    );
}
