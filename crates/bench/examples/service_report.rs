//! Emits `BENCH_service.json` — the committed throughput/tail-latency record of the
//! always-on [`fmore_fl::service::AuctionService`] under synthetic multi-tenant traffic.
//!
//! The workload is the soak fleet of `fmore_sim::experiments::service_soak`: concurrent
//! jobs of mixed schemes (FMore top-K and ψ-FMore) and mixed population stream contracts
//! (v1 and v2), each driven from its own OS thread through the service's bounded
//! request/drain interface, all multiplexed on one shared worker pool. Every round is a
//! full streamed auction (bid derivation → sharded scoring → bounded top-K → payments)
//! plus the per-winner synthetic work fan-out, so "rounds per second" measures the real
//! service path, not an empty queue.
//!
//! ```bash
//! cargo run --release -p fmore-bench --example service_report -- BENCH_service.json
//! ```
//!
//! The acceptance gate is asserted at the bottom: ≥ 1,000 aggregate rounds/sec across the
//! 8-job fleet, with p50/p99 per-round latency recorded. `FMORE_BENCH_QUICK=1` shrinks the
//! round count for CI smoke runs (the gate still applies).

use fmore_bench::timing::{hardware_threads, quick_mode, schema_string, write_report};
use fmore_fl::engine::RoundEngine;
use fmore_fl::service::{AuctionService, JobSpec, ServiceConfig};
use fmore_sim::experiments::adversary_soak::{self, AdversaryConfig};
use fmore_sim::experiments::chaos_soak::{self, ChaosConfig};
use fmore_sim::experiments::service_soak::{job_specs, SoakConfig};
use std::time::Instant;

struct JobStats {
    name: String,
    quarantined_updates: usize,
    retried_rounds: usize,
}

struct FleetResult {
    jobs: usize,
    rounds_total: usize,
    elapsed_ns: u128,
    rounds_per_sec: f64,
    p50_ns: u128,
    p99_ns: u128,
    retried_rounds: usize,
    faults_injected: usize,
    per_job: Vec<JobStats>,
}

fn percentile(sorted: &[u128], q: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Drives the given tenant specs concurrently for `rounds_per_job` rounds each and
/// measures the aggregate throughput plus the distribution of individual round latencies.
/// Every round must ultimately succeed — under a fault plan that means the watchdog's
/// retries are part of the measured latency, which is exactly the overhead being priced.
fn drive_fleet(specs: Vec<JobSpec>, rounds_per_job: usize) -> FleetResult {
    let jobs = specs.len();
    let service = AuctionService::with_engine(
        ServiceConfig {
            max_jobs: jobs,
            max_pending: 4,
        },
        RoundEngine::default(),
    );
    let ids: Vec<_> = specs
        .into_iter()
        .map(|spec| service.admit(spec).expect("admission"))
        .collect();

    let started = Instant::now();
    let mut latencies: Vec<u128> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let service = &service;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(rounds_per_job);
                    for _ in 0..rounds_per_job {
                        let t0 = Instant::now();
                        service.request_round(id).expect("queue has room");
                        service.run_pending(id).expect("round runs");
                        lat.push(t0.elapsed().as_nanos());
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("driver thread survives"))
            .collect()
    });
    let elapsed_ns = started.elapsed().as_nanos();

    // Every requested round actually ran and succeeded (faulted rounds via retry).
    let mut retried_rounds = 0;
    let mut faults_injected = 0;
    let mut per_job = Vec::with_capacity(ids.len());
    for &id in &ids {
        let history = service.history(id).expect("job is live");
        assert_eq!(history.completed(), rounds_per_job);
        assert_eq!(history.failed(), 0);
        let retried = history.rounds.iter().filter(|r| r.attempts > 1).count();
        retried_rounds += retried;
        faults_injected += history.rounds.iter().map(|r| r.faults.len()).sum::<usize>();
        per_job.push(JobStats {
            name: history.name.clone(),
            quarantined_updates: history
                .rounds
                .iter()
                .filter_map(|r| r.outcome.as_ref().ok().map(|s| s.quarantined))
                .sum(),
            retried_rounds: retried,
        });
    }

    latencies.sort_unstable();
    let rounds_total = latencies.len();
    FleetResult {
        jobs,
        rounds_total,
        elapsed_ns,
        rounds_per_sec: rounds_total as f64 / (elapsed_ns as f64 / 1e9),
        p50_ns: percentile(&latencies, 0.50),
        p99_ns: percentile(&latencies, 0.99),
        retried_rounds,
        faults_injected,
        per_job,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());
    let quick = quick_mode();
    let rounds_per_job = if quick { 150 } else { 600 };

    let base = SoakConfig {
        jobs: 8,
        rounds: rounds_per_job,
        population: 2_048,
        shard_size: 512,
        winners: 16,
        reserve: 16,
        grid_size: 64,
        seed: 9_090,
        fan_out: Default::default(),
    };
    let duo = SoakConfig {
        jobs: 2,
        ..base.clone()
    };
    let chaos = ChaosConfig {
        soak: base.clone(),
        update_dim: 8,
        fault_seed: 0xC4A0,
    };
    let adversary = AdversaryConfig {
        soak: base.clone(),
        update_dim: 8,
        // The descent-panel knobs are irrelevant here: only the fleet specs are driven.
        panel: 0,
        descent_rounds: 0,
        adversary_seed: 0xADE7,
    };
    let specs_for = |c: &SoakConfig| job_specs(c).expect("soak specs build");

    // Warm the shared pool and populations once, then measure.
    drive_fleet(specs_for(&duo), 5.min(rounds_per_job));
    let fleets = [
        drive_fleet(specs_for(&duo), rounds_per_job),
        drive_fleet(specs_for(&base), rounds_per_job),
    ];
    // The same 8-tenant fleet under an active FaultPlan on the odd half: prices the fault
    // layer (injection draws, watchdog metering, retries, screening) against the clean run.
    let chaos_fleet = drive_fleet(
        chaos_soak::job_specs(&chaos).expect("chaos specs build"),
        rounds_per_job,
    );
    // And once more under a Byzantine AdversaryPlan on the odd half: prices the adversary
    // layer (bid distortion draws, update poisoning, robust-aggregation screening, the
    // reputation ledger feeding back into selection) against the same clean run.
    let adversary_fleet = drive_fleet(
        adversary_soak::job_specs(&adversary).expect("adversary specs build"),
        rounds_per_job,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        schema_string("service", 3)
    ));
    json.push_str(
        "  \"note\": \"aggregate throughput and per-round latency of the multi-tenant AuctionService: N concurrent mixed-scheme jobs (v1+v2 stream contracts, FMore and psi-FMore), one OS driver thread per job, one shared worker pool; every round is a full streamed auction plus winner-work fan-out; the fault_overhead section re-times the 8-job fleet under an active FaultPlan (injected panics/stalls/dropouts/corruption on the odd half, watchdog retries included in latency); the adversary_overhead section re-times it under a Byzantine AdversaryPlan on the odd half (bid distortion, update poisoning, robust-aggregation screening, reputation feedback); regenerate with `cargo run --release -p fmore-bench --example service_report`\",\n",
    );
    json.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        hardware_threads()
    ));
    json.push_str(&format!("  \"quick_mode\": {quick},\n"));
    json.push_str(&format!(
        "  \"workload\": {{ \"population\": {}, \"shard_size\": {}, \"winners\": {}, \"rounds_per_job\": {rounds_per_job} }},\n",
        base.population, base.shard_size, base.winners
    ));
    for fleet in &fleets {
        json.push_str(&format!(
            "  \"jobs_{}\": {{ \"rounds_total\": {}, \"elapsed_ns\": {}, \"rounds_per_sec\": {:.1}, \"p50_round_ns\": {}, \"p99_round_ns\": {} }},\n",
            fleet.jobs,
            fleet.rounds_total,
            fleet.elapsed_ns,
            fleet.rounds_per_sec,
            fleet.p50_ns,
            fleet.p99_ns
        ));
    }
    let clean = &fleets[1];
    json.push_str(&format!(
        "  \"fault_overhead\": {{ \"jobs\": {}, \"faulted_jobs\": {}, \"rounds_total\": {}, \"rounds_per_sec\": {:.1}, \"p50_round_ns\": {}, \"p99_round_ns\": {}, \"retried_rounds\": {}, \"faults_injected\": {}, \"throughput_vs_clean\": {:.3} }},\n",
        chaos_fleet.jobs,
        chaos_fleet.jobs / 2,
        chaos_fleet.rounds_total,
        chaos_fleet.rounds_per_sec,
        chaos_fleet.p50_ns,
        chaos_fleet.p99_ns,
        chaos_fleet.retried_rounds,
        chaos_fleet.faults_injected,
        chaos_fleet.rounds_per_sec / clean.rounds_per_sec
    ));
    let adversary_vs_clean = adversary_fleet.rounds_per_sec / clean.rounds_per_sec;
    let per_job_json = adversary_fleet
        .per_job
        .iter()
        .map(|j| {
            format!(
                "    {{ \"job\": \"{}\", \"quarantined_updates\": {}, \"retried_rounds\": {} }}",
                j.name, j.quarantined_updates, j.retried_rounds
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    json.push_str(&format!(
        "  \"adversary_overhead\": {{ \"jobs\": {}, \"adversarial_jobs\": {}, \"rounds_total\": {}, \"rounds_per_sec\": {:.1}, \"p50_round_ns\": {}, \"p99_round_ns\": {}, \"quarantined_updates\": {}, \"retried_rounds\": {}, \"throughput_vs_clean\": {:.3}, \"per_job\": [\n{per_job_json}\n  ] }}\n",
        adversary_fleet.jobs,
        adversary_fleet.jobs / 2,
        adversary_fleet.rounds_total,
        adversary_fleet.rounds_per_sec,
        adversary_fleet.p50_ns,
        adversary_fleet.p99_ns,
        adversary_fleet
            .per_job
            .iter()
            .map(|j| j.quarantined_updates)
            .sum::<usize>(),
        adversary_fleet.retried_rounds,
        adversary_vs_clean
    ));
    json.push_str("}\n");

    write_report(&out_path, &json);
    let eight = &fleets[1];
    eprintln!(
        "wrote {out_path} ({} jobs: {:.0} rounds/sec, p50 {:.2}ms, p99 {:.2}ms; under chaos: {:.0} rounds/sec, {} retried, {} faults)",
        eight.jobs,
        eight.rounds_per_sec,
        eight.p50_ns as f64 / 1e6,
        eight.p99_ns as f64 / 1e6,
        chaos_fleet.rounds_per_sec,
        chaos_fleet.retried_rounds,
        chaos_fleet.faults_injected
    );
    // The ISSUE acceptance gate: at least a thousand synthetic rounds/sec aggregate across
    // the clean 8-job fleet, even in quick mode on a single hardware thread. (The chaos
    // fleet is recorded, not gated — its retries and stall sleeps price the fault layer.)
    assert!(
        eight.rounds_per_sec >= 1_000.0,
        "service throughput regressed below the 1000 rounds/sec gate ({:.1} rounds/sec)",
        eight.rounds_per_sec
    );
    assert!(
        chaos_fleet.faults_injected > 0 && chaos_fleet.retried_rounds > 0,
        "the chaos fleet injected nothing — the fault_overhead section is vacuous"
    );
    // Robust aggregation plus the reputation ledger must stay within 4× of the clean
    // fleet's cost — the adversary layer is screening arithmetic, not a second service.
    assert!(
        adversary_vs_clean >= 0.25,
        "the adversary fleet fell below 0.25x clean throughput ({adversary_vs_clean:.3})"
    );
    assert!(
        adversary_fleet
            .per_job
            .iter()
            .any(|j| j.quarantined_updates > 0),
        "the adversary fleet quarantined nothing — the adversary_overhead section is vacuous"
    );
}
