//! Emits `BENCH_hot_path.json` — the committed perf-trajectory record of the training hot
//! path. Re-times the same suite as `benches/hot_path.rs` with plain `Instant` loops
//! (min-of-N, which is far more stable across CI machines than means) and writes one JSON
//! document with kernel, train-epoch, and round throughput numbers.
//!
//! ```bash
//! cargo run --release -p fmore-bench --example bench_report -- BENCH_hot_path.json
//! ```
//!
//! Regenerate (and re-commit) after any change to the matrix kernels, the arena path, or
//! the round engine, so the repository tracks how each PR moved the hot path.

use fmore_bench::baseline::NaiveMlp;
use fmore_bench::timing::{min_time_ns as time_ns, schema_string, write_report};
use fmore_ml::arena::ScratchArena;
use fmore_ml::dataset::SyntheticImageSpec;
use fmore_ml::layers::{Activation, Dense, Layer};
use fmore_ml::model::Model;
use fmore_ml::{Matrix, Sequential};
use fmore_numerics::seeded_rng;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hot_path.json".to_string());

    // --- Kernels: layer-sized operands (32-sample batch, 64x64 weight block). ---
    let mut rng = seeded_rng(51);
    let a = Matrix::random_uniform(32, 64, 1.0, &mut rng);
    let w = Matrix::random_uniform(64, 64, 1.0, &mut rng);
    let g = Matrix::random_uniform(32, 64, 1.0, &mut rng);
    let mut out = Matrix::default();
    let kernels = [
        (
            "matmul_alloc",
            time_ns(50, 400, || {
                std::hint::black_box(a.matmul(&w));
            }),
        ),
        (
            "matmul_into",
            time_ns(50, 400, || a.matmul_into(&w, &mut out)),
        ),
        (
            "transpose_a_alloc",
            time_ns(50, 400, || {
                std::hint::black_box(a.transpose().matmul(&g));
            }),
        ),
        (
            "transpose_a_into",
            time_ns(50, 400, || a.matmul_transpose_a_into(&g, &mut out)),
        ),
        (
            "transpose_b_alloc",
            time_ns(50, 400, || {
                std::hint::black_box(g.matmul(&w.transpose()));
            }),
        ),
        (
            "transpose_b_into",
            time_ns(50, 400, || g.matmul_transpose_b_into(&w, &mut out)),
        ),
    ];

    // --- train_epoch on the quick-fidelity MLP: arena path vs the seed replica. ---
    let mut data_rng = seeded_rng(52);
    let data = SyntheticImageSpec::mnist_like().generate(400, &mut data_rng);
    let all: Vec<usize> = (0..data.len()).collect();
    let mut build_rng = seeded_rng(50);
    let mut model = Sequential::new(vec![
        Box::new(Dense::new(data.feature_dim(), 32, &mut build_rng)) as Box<dyn Layer>,
        Box::new(Activation::relu()),
        Box::new(Dense::new(32, data.num_classes(), &mut build_rng)),
    ]);
    let mut naive = NaiveMlp::from_params(
        data.feature_dim(),
        32,
        data.num_classes(),
        &model.parameters(),
    );
    let mut arena = ScratchArena::new();
    let mut epoch_rng = seeded_rng(53);
    let arena_ns = time_ns(5, 40, || {
        std::hint::black_box(model.train_epoch_in(
            &mut arena,
            &data,
            &all,
            0.1,
            16,
            &mut epoch_rng,
        ));
    });
    let mut naive_rng = seeded_rng(53);
    let naive_ns = time_ns(5, 40, || {
        std::hint::black_box(naive.train_epoch(&data, &all, 0.1, 16, &mut naive_rng));
    });
    let speedup = naive_ns as f64 / arena_ns as f64;

    // --- One full FMore round (the shared pooled-round workload) at 1/2/8 pool threads. ---
    let mut rounds = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut trainer = fmore_bench::pooled_round_trainer(threads);
        let ns = time_ns(3, 30, || {
            trainer.run_round().expect("round runs");
        });
        rounds.push((threads, ns));
    }

    // --- Emit the JSON document (no serde in the offline workspace; hand-formatted). ---
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"schema\": \"{}\",\n",
        schema_string("hot-path", 1)
    ));
    json.push_str(
        "  \"note\": \"min-of-N wall-clock; regenerate with `cargo run --release -p fmore-bench --example bench_report`\",\n",
    );
    json.push_str("  \"kernels_ns\": {\n");
    for (i, (name, ns)) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {ns}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"train_epoch\": {\n");
    json.push_str(&format!("    \"arena_ns\": {arena_ns},\n"));
    json.push_str(&format!("    \"seed_baseline_ns\": {naive_ns},\n"));
    json.push_str(&format!("    \"speedup\": {speedup:.2}\n"));
    json.push_str("  },\n");
    json.push_str("  \"pooled_round_ns\": {\n");
    for (i, (threads, ns)) in rounds.iter().enumerate() {
        let comma = if i + 1 < rounds.len() { "," } else { "" };
        json.push_str(&format!("    \"threads_{threads}\": {ns}{comma}\n"));
    }
    json.push_str("  }\n");
    json.push_str("}\n");

    write_report(&out_path, &json);
    eprintln!("wrote {out_path} (train_epoch speedup over seed baseline: {speedup:.2}x)");
    // Loose gate: this runs on shared CI machines where wall-clock is noisy, so only a
    // drastic regression (arena path at half the seed baseline) should fail the step.
    assert!(
        speedup >= 0.5,
        "arena path drastically regressed below the seed baseline ({speedup:.2}x)"
    );
}
