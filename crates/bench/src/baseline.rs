//! A faithful replica of the **pre-refactor** training hot path, kept as the comparison
//! baseline for the `hot_path` bench and the arena-equivalence property tests.
//!
//! Before the allocation-free rework, every mini-batch of `Sequential::train_epoch`
//! allocated: the batch gather, a clone of the input at the top of the forward pass, a
//! cached clone of each dense layer's input and each activation's output, a fresh matrix
//! per `matmul` / `add_row_broadcast` / `map` / `hadamard`, materialised `transpose()`s in
//! the backward pass, and a cloned gradient to seed back-propagation. [`NaiveMlp`] performs
//! exactly that sequence of operations (allocations included) for the quick-fidelity MLP
//! architecture (`dense → relu → dense`), using only the allocating `Matrix` kernels — so
//! timing it against [`fmore_ml::Sequential::train_epoch_in`] measures precisely what the
//! rework bought, and comparing parameter trajectories bit-for-bit proves the rework
//! changed nothing numerically.

use fmore_ml::dataset::Dataset;
use fmore_ml::loss::softmax;
use fmore_ml::Matrix;
use rand::rngs::StdRng;

// --- The seed's scalar matrix kernels, reproduced verbatim. -----------------------------
//
// The refactor rewired `Matrix::matmul`/`transpose`/… onto the new register-blocked cores,
// so timing the baseline through those methods would hide most of what this PR changed.
// These free functions replicate the seed kernels operation-for-operation: the skip-zero
// i/k/j matmul, the allocating transpose, and the collect-per-call element-wise ops. For
// finite inputs they are bit-identical to the new kernels (pinned by the unit test below),
// differing only in speed and allocation behaviour.

fn seed_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let v = a.get(i, k);
            if v == 0.0 {
                continue;
            }
            let b_row = b.row(k);
            for (o, bv) in out.row_mut(i).iter_mut().zip(b_row) {
                *o += v * bv;
            }
        }
    }
    out
}

fn seed_transpose(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.cols(), m.rows());
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            out.set(j, i, m.get(i, j));
        }
    }
    out
}

fn seed_map<F: Fn(f64) -> f64>(m: &Matrix, f: F) -> Matrix {
    Matrix::from_vec(m.rows(), m.cols(), m.data().iter().map(|&x| f(x)).collect())
}

fn seed_hadamard(a: &Matrix, b: &Matrix) -> Matrix {
    Matrix::from_vec(
        a.rows(),
        a.cols(),
        a.data().iter().zip(b.data()).map(|(x, y)| x * y).collect(),
    )
}

fn seed_add_row_broadcast(m: &Matrix, bias: &Matrix) -> Matrix {
    let mut out = m.clone();
    for i in 0..m.rows() {
        for (o, bv) in out.row_mut(i).iter_mut().zip(bias.row(0)) {
            *o += bv;
        }
    }
    out
}

fn seed_sum_rows(m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, m.cols());
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            out.set(0, j, out.get(0, j) + m.get(i, j));
        }
    }
    out
}

/// The seed's softmax cross-entropy: a probability matrix and a gradient clone per call.
fn seed_softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f64, Matrix) {
    let probs = softmax(logits);
    let batch = logits.rows() as f64;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &label) in labels.iter().enumerate() {
        let p = probs.get(r, label).max(1e-12);
        loss -= p.ln();
        grad.set(r, label, grad.get(r, label) - 1.0);
    }
    grad.scale_in_place(1.0 / batch);
    (loss / batch, grad)
}

/// The pre-refactor `dense → relu → dense` training path (see the module docs).
#[derive(Debug, Clone)]
pub struct NaiveMlp {
    w1: Matrix,
    b1: Matrix,
    w2: Matrix,
    b2: Matrix,
}

impl NaiveMlp {
    /// Builds the baseline from a flat parameter vector in `Sequential` export order
    /// (`w1`, `b1`, `w2`, `b2`), as produced by an MLP from
    /// [`fmore_ml::models::mlp_classifier`]-style stacks.
    ///
    /// # Panics
    ///
    /// Panics if `params` has the wrong length for the given dimensions.
    pub fn from_params(input: usize, hidden: usize, classes: usize, params: &[f64]) -> Self {
        let (w1_len, b1_len, w2_len, b2_len) = (input * hidden, hidden, hidden * classes, classes);
        assert_eq!(
            params.len(),
            w1_len + b1_len + w2_len + b2_len,
            "parameter vector length mismatch"
        );
        let mut offset = 0;
        let mut take = |rows: usize, cols: usize| {
            let m = Matrix::from_vec(rows, cols, params[offset..offset + rows * cols].to_vec());
            offset += rows * cols;
            m
        };
        Self {
            w1: take(input, hidden),
            b1: take(1, hidden),
            w2: take(hidden, classes),
            b2: take(1, classes),
        }
    }

    /// Exports the parameters in the same flat order they were imported.
    pub fn parameters(&self) -> Vec<f64> {
        let mut out = Vec::new();
        out.extend_from_slice(self.w1.data());
        out.extend_from_slice(self.b1.data());
        out.extend_from_slice(self.w2.data());
        out.extend_from_slice(self.b2.data());
        out
    }

    /// One epoch of mini-batch SGD, operation-for-operation identical (allocations
    /// included) to the pre-refactor `Sequential::train_epoch`. Returns the mean batch
    /// loss; consumes the same RNG stream as the arena-backed path.
    pub fn train_epoch(
        &mut self,
        data: &Dataset,
        indices: &[usize],
        learning_rate: f64,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> f64 {
        if indices.is_empty() {
            return 0.0;
        }
        let batch_size = batch_size.max(1);
        let mut order = indices.to_vec();
        fmore_numerics::rng::shuffle(&mut order, rng);
        let mut total_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch_size) {
            let (x, y) = data.batch(chunk);
            // Forward, with the clone-per-stage caching the old layers performed.
            let x = x.clone(); // Sequential::forward started from a clone of the batch
            let cached_x = x.clone(); // Dense 1 cached its input
            let z1 = seed_add_row_broadcast(&seed_matmul(&x, &self.w1), &self.b1);
            let a1 = seed_map(&z1, |v| v.max(0.0));
            let cached_a1 = a1.clone(); // Activation cached its output
            let cached_a1_in = a1.clone(); // Dense 2 cached its input
            let logits = seed_add_row_broadcast(&seed_matmul(&a1, &self.w2), &self.b2);
            let (loss, grad_logits) = seed_softmax_cross_entropy(&logits, &y);
            // Backward, with materialised transposes as the old dense layer used.
            let grad = grad_logits.clone(); // backward_and_step cloned the loss gradient
            let grad_w2 = seed_matmul(&seed_transpose(&cached_a1_in), &grad);
            let grad_b2 = seed_sum_rows(&grad);
            let grad_h = seed_matmul(&grad, &seed_transpose(&self.w2));
            let deriv = seed_map(&cached_a1, |y| if y > 0.0 { 1.0 } else { 0.0 });
            let grad_z1 = seed_hadamard(&grad_h, &deriv);
            let grad_w1 = seed_matmul(&seed_transpose(&cached_x), &grad_z1);
            let grad_b1 = seed_sum_rows(&grad_z1);
            // The old stack also produced ∂L/∂input of the first layer.
            let _grad_x = seed_matmul(&grad_z1, &seed_transpose(&self.w1));
            self.w1.add_scaled_in_place(&grad_w1, -learning_rate);
            self.b1.add_scaled_in_place(&grad_b1, -learning_rate);
            self.w2.add_scaled_in_place(&grad_w2, -learning_rate);
            self.b2.add_scaled_in_place(&grad_b2, -learning_rate);
            total_loss += loss;
            batches += 1;
        }
        total_loss / batches as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmore_ml::dataset::SyntheticImageSpec;
    use fmore_ml::layers::{Activation, Dense, Layer};
    use fmore_ml::model::Model;
    use fmore_ml::Sequential;
    use fmore_numerics::seeded_rng;

    /// The baseline and the arena-backed `Sequential` produce bit-identical parameter
    /// trajectories from the same seed — the contract the hot-path bench relies on to call
    /// its speedup like-for-like.
    #[test]
    fn baseline_matches_sequential_bit_for_bit() {
        let mut data_rng = seeded_rng(40);
        let data = SyntheticImageSpec::mnist_like().generate(150, &mut data_rng);
        let all: Vec<usize> = (0..data.len()).collect();
        let mut build_rng = seeded_rng(41);
        let mut model = Sequential::new(vec![
            Box::new(Dense::new(data.feature_dim(), 32, &mut build_rng)) as Box<dyn Layer>,
            Box::new(Activation::relu()),
            Box::new(Dense::new(32, data.num_classes(), &mut build_rng)),
        ]);
        let mut naive = NaiveMlp::from_params(
            data.feature_dim(),
            32,
            data.num_classes(),
            &model.parameters(),
        );
        let mut rng_a = seeded_rng(42);
        let mut rng_b = seeded_rng(42);
        for _ in 0..2 {
            let la = model.train_epoch(&data, &all, 0.1, 16, &mut rng_a);
            let lb = naive.train_epoch(&data, &all, 0.1, 16, &mut rng_b);
            assert_eq!(la.to_bits(), lb.to_bits());
            assert_eq!(model.parameters(), naive.parameters());
        }
    }
}
