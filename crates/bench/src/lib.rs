//! Benchmark harness for the FMore reproduction.
//!
//! The crate contains no library code — the interesting parts are its Criterion benches,
//! each of which regenerates the data behind one or more paper figures before timing the
//! underlying computation:
//!
//! * `mechanism` — micro-benchmarks and ablations of the auction core (equilibrium solving
//!   via quadrature vs the paper's Euler route vs Che's closed form, first- vs second-price
//!   payment, top-K vs ψ-FMore selection, scoring-function families),
//! * `figures_accuracy` — Figs. 4–8 (accuracy/loss curves per scheme, winner-score
//!   distribution),
//! * `figures_parameters` — Figs. 9–11 (impact of `N`, `K`, and ψ),
//! * `figures_cluster` — Figs. 12–13 and the headline table (the simulated MEC cluster).
//!
//! Run everything with `cargo bench --workspace`; each bench prints the regenerated
//! rows/series to stdout so the numbers can be compared against the paper (see
//! EXPERIMENTS.md).

/// Marker constant so the crate has at least one documented item.
pub const BENCH_CRATE: &str = "fmore-bench";
