//! Benchmark harness for the FMore reproduction.
//!
//! The interesting parts are the Criterion benches, each of which regenerates the data
//! behind one or more paper figures before timing the underlying computation:
//!
//! * `mechanism` — micro-benchmarks and ablations of the auction core (equilibrium solving
//!   via quadrature vs the paper's Euler route vs Che's closed form, first- vs second-price
//!   payment, top-K vs ψ-FMore selection, scoring-function families),
//! * `figures_accuracy` — Figs. 4–8 (accuracy/loss curves per scheme, winner-score
//!   distribution),
//! * `figures_parameters` — Figs. 9–11 (impact of `N`, `K`, and ψ),
//! * `figures_cluster` — Figs. 12–13 and the headline table (the simulated MEC cluster),
//! * `round_engine` — the pooled round pipeline vs the seed's spawn-per-round path,
//! * `hot_path` — the allocation-free training kernels: in-place matmul family vs the
//!   allocating composition, arena-backed `train_epoch` vs the [`baseline`] replica of the
//!   pre-refactor path, and a full pooled round at 1/2/8 worker threads,
//! * `auction_scale` — streamed vs dense selection rounds as the population sweeps to 10⁶,
//! * `round_throughput` — the pooled round and the million-bidder streamed round across
//!   work-stealing executor widths 1/2/4/8.
//!
//! Run everything with `cargo bench --workspace`; append `-- --test` (or set
//! `FMORE_BENCH_QUICK=1`) for the quick smoke mode CI uses. The report examples
//! (`bench_report`, `auction_scale_report`, `round_throughput_report`) re-time their
//! suites with the shared min-of-N scaffolding in [`timing`] and emit the committed
//! `BENCH_*.json` perf-trajectory records — regenerate after any substrate change:
//!
//! ```bash
//! cargo run --release -p fmore-bench --example bench_report -- BENCH_hot_path.json
//! cargo run --release -p fmore-bench --example auction_scale_report -- BENCH_auction_scale.json
//! cargo run --release -p fmore-bench --example round_throughput_report -- BENCH_round_throughput.json
//! ```

pub mod baseline;
pub mod timing;

/// Marker constant so the crate root has at least one documented item.
pub const BENCH_CRATE: &str = "fmore-bench";

/// The shared "pooled round" workload of the `hot_path` and `round_throughput` suites and
/// their report examples: one full FMore federated round (24 clients, 12 winners, 1,200
/// training samples on the quick-fidelity MNIST-O task, seed 54) on a pool of `threads`
/// workers. Defined once so `BENCH_hot_path.json` and `BENCH_round_throughput.json`
/// always time the identical workload — tuning it here moves every consumer together.
pub fn pooled_round_trainer(threads: usize) -> fmore_fl::trainer::FederatedTrainer {
    let mut config = fmore_fl::config::FlConfig::fast_test(fmore_ml::TaskKind::MnistO);
    config.clients = 24;
    config.winners_per_round = 12;
    config.partition.clients = 24;
    config.train_samples = 1_200;
    fmore_fl::trainer::FederatedTrainer::with_engine(
        config,
        fmore_fl::selection::SelectionStrategy::fmore(),
        54,
        fmore_fl::engine::RoundEngine::pooled(threads),
    )
    .expect("bench config is valid")
}

/// The straggler-heavy local-training fan-out workload of `round_throughput_report`: seven
/// uniform winners plus one straggler holding `straggler / small`× their data, submitted
/// **last** — the worst case for per-winner dispatch (the monolithic straggler task starts
/// only after earlier tasks drain) and the case the chain scheduler's
/// longest-remaining-first policy exists for. Rebuilt per timed run: jobs are consumed by
/// [`fmore_fl::engine::local_training_with`].
pub fn straggler_fanout_jobs(small: usize, straggler: usize) -> Vec<fmore_fl::engine::TrainingJob> {
    use fmore_ml::dataset::SyntheticImageSpec;
    use fmore_ml::layers::{Dense, Layer};
    use fmore_ml::{Model, Sequential};
    use std::sync::Arc;

    let mut rng = fmore_numerics::seeded_rng(77);
    let data = Arc::new(SyntheticImageSpec::mnist_like().generate(512, &mut rng));
    let model = Sequential::new(vec![
        Box::new(Dense::new(data.feature_dim(), 16, &mut rng)) as Box<dyn Layer>,
        Box::new(Dense::new(16, data.num_classes(), &mut rng)),
    ]);
    let global_params = Arc::new(model.parameters());
    let sizes = [small, small, small, small, small, small, small, straggler];
    sizes
        .iter()
        .enumerate()
        .map(|(slot, &size)| {
            let mut state = fmore_fl::engine::SlotState::new(model.clone());
            state.indices = (0..size).map(|i| (slot * 31 + i) % data.len()).collect();
            fmore_fl::engine::TrainingJob {
                slot,
                client: slot,
                state,
                global_params: Arc::clone(&global_params),
                data: Arc::clone(&data),
                epochs: 2,
                learning_rate: 0.05,
                batch_size: 16,
                seed: fmore_numerics::rng::derive_seed(78, slot as u64),
            }
        })
        .collect()
}
