//! Benchmark harness for the FMore reproduction.
//!
//! The interesting parts are the Criterion benches, each of which regenerates the data
//! behind one or more paper figures before timing the underlying computation:
//!
//! * `mechanism` — micro-benchmarks and ablations of the auction core (equilibrium solving
//!   via quadrature vs the paper's Euler route vs Che's closed form, first- vs second-price
//!   payment, top-K vs ψ-FMore selection, scoring-function families),
//! * `figures_accuracy` — Figs. 4–8 (accuracy/loss curves per scheme, winner-score
//!   distribution),
//! * `figures_parameters` — Figs. 9–11 (impact of `N`, `K`, and ψ),
//! * `figures_cluster` — Figs. 12–13 and the headline table (the simulated MEC cluster),
//! * `round_engine` — the pooled round pipeline vs the seed's spawn-per-round path,
//! * `hot_path` — the allocation-free training kernels: in-place matmul family vs the
//!   allocating composition, arena-backed `train_epoch` vs the [`baseline`] replica of the
//!   pre-refactor path, and a full pooled round at 1/2/8 worker threads.
//!
//! Run everything with `cargo bench --workspace`; append `-- --test` for the quick smoke
//! mode CI uses. The `bench_report` example re-times the hot-path suite with plain
//! `Instant` loops and emits `BENCH_hot_path.json`, the committed perf-trajectory record —
//! regenerate it after any kernel change:
//!
//! ```bash
//! cargo run --release -p fmore-bench --example bench_report -- BENCH_hot_path.json
//! ```

pub mod baseline;

/// Marker constant so the crate root has at least one documented item.
pub const BENCH_CRATE: &str = "fmore-bench";
