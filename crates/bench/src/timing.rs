//! Shared scaffolding of the committed bench reports (`BENCH_*.json`).
//!
//! All three report examples — `bench_report`, `auction_scale_report`, and
//! `round_throughput_report` — time the same way: plain `Instant` loops taking the
//! **minimum** of N samples after a few untimed warm-ups, which is far more stable across
//! shared CI machines than means, and emit one hand-formatted JSON document (the offline
//! workspace has no serde) whose first field is a versioned schema string from
//! [`schema_string`]. This module is the single home of that scaffolding; the examples
//! hold only their suite-specific measurement code.

use std::time::Instant;

/// Minimum wall-clock time of one invocation of `f`, in nanoseconds, over `samples` timed
/// runs after `warmup` untimed ones.
pub fn min_time_ns<F: FnMut()>(warmup: usize, samples: usize, mut f: F) -> u128 {
    for _ in 0..warmup {
        f();
    }
    let mut best = u128::MAX;
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_nanos());
    }
    best
}

/// The versioned schema identifier of a committed report: `fmore-<name>-bench/v<version>`.
/// Bump the version whenever a report's field layout changes, so downstream consumers of
/// the committed JSON can tell the difference.
pub fn schema_string(name: &str, version: u32) -> String {
    format!("fmore-{name}-bench/v{version}")
}

/// Hardware threads visible to this process — what the pooled-speedup gates key off:
/// demanding an 8-thread speedup on a single-core runner would only measure scheduler
/// noise, so the reports record this next to their numbers and scale their assertions.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Whether the workspace-wide quick-mode toggle is set (the same `FMORE_BENCH_QUICK`
/// environment variable the vendored criterion honours): report examples shrink their
/// problem sizes and sample counts so CI can afford to run them on every push.
pub fn quick_mode() -> bool {
    std::env::var("FMORE_BENCH_QUICK").is_ok_and(|v| v != "0")
}

/// Writes a finished report to `path` and echoes it to stdout (the CI log carries the
/// numbers even when the artifact upload is skipped).
pub fn write_report(path: &str, json: &str) {
    std::fs::write(path, json).expect("write bench report");
    print!("{json}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_time_is_positive_and_monotone_under_more_samples() {
        let mut calls = 0usize;
        let ns = min_time_ns(2, 5, || calls += 1);
        assert_eq!(calls, 7, "warmup + samples invocations");
        assert!(ns > 0);
        // Zero samples still times one invocation (min of an empty set is useless).
        assert!(min_time_ns(0, 0, || ()) < u128::MAX);
    }

    #[test]
    fn schema_strings_are_versioned() {
        assert_eq!(schema_string("hot-path", 1), "fmore-hot-path-bench/v1");
        assert_eq!(
            schema_string("round-throughput", 2),
            "fmore-round-throughput-bench/v2"
        );
    }

    #[test]
    fn hardware_threads_reports_at_least_one() {
        assert!(hardware_threads() >= 1);
    }
}
